#include "core/drx_file.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/scatter.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace drx::core {

Result<DrxFile> DrxFile::create(std::unique_ptr<pfs::Storage> meta_storage,
                                std::unique_ptr<pfs::Storage> data_storage,
                                Shape element_bounds, Shape chunk_shape,
                                const Options& options) {
  if (element_bounds.size() != chunk_shape.size() || element_bounds.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "element bounds and chunk shape must have equal rank >= 1");
  }
  for (std::uint64_t c : chunk_shape) {
    if (c == 0) {
      return Status(ErrorCode::kInvalidArgument, "zero chunk extent");
    }
  }
  Metadata meta(options.dtype, options.in_chunk_order,
                std::move(element_bounds), std::move(chunk_shape));
  DrxFile file(std::move(meta_storage), std::move(data_storage),
               std::move(meta));
  // Zero-initialize the initial allocation so every allocated chunk is
  // readable immediately.
  DRX_RETURN_IF_ERROR(file.data_->truncate(0));
  const std::uint64_t bytes = file.meta_.data_file_bytes();
  if (bytes > 0) {
    std::vector<std::byte> zeros(checked_size(file.meta_.chunk_bytes()),
                                 std::byte{0});
    for (std::uint64_t q = 0; q < file.meta_.mapping.total_chunks(); ++q) {
      DRX_RETURN_IF_ERROR(
          file.data_->write_at(q * file.meta_.chunk_bytes(), zeros));
    }
  }
  DRX_RETURN_IF_ERROR(file.flush());
  return file;
}

Result<DrxFile> DrxFile::open(std::unique_ptr<pfs::Storage> meta_storage,
                              std::unique_ptr<pfs::Storage> data_storage) {
  std::vector<std::byte> image(
      checked_size(meta_storage->size()));
  DRX_RETURN_IF_ERROR(meta_storage->read_at(0, image));
  DRX_ASSIGN_OR_RETURN(Metadata meta, Metadata::from_bytes(image));
  if (data_storage->size() < meta.data_file_bytes()) {
    return Status(ErrorCode::kCorrupt,
                  ".xta smaller than the metadata requires");
  }
  return DrxFile(std::move(meta_storage), std::move(data_storage),
                 std::move(meta));
}

Result<DrxFile> DrxFile::create_posix(const std::string& name,
                                      Shape element_bounds, Shape chunk_shape,
                                      const Options& options) {
  DRX_ASSIGN_OR_RETURN(auto meta_storage,
                       pfs::PosixStorage::open(name + ".xmd"));
  DRX_ASSIGN_OR_RETURN(auto data_storage,
                       pfs::PosixStorage::open(name + ".xta"));
  return create(std::move(meta_storage), std::move(data_storage),
                std::move(element_bounds), std::move(chunk_shape), options);
}

Result<DrxFile> DrxFile::open_posix(const std::string& name) {
  DRX_ASSIGN_OR_RETURN(auto meta_storage,
                       pfs::PosixStorage::open(name + ".xmd"));
  DRX_ASSIGN_OR_RETURN(auto data_storage,
                       pfs::PosixStorage::open(name + ".xta"));
  return open(std::move(meta_storage), std::move(data_storage));
}

Status DrxFile::flush() {
  const std::vector<std::byte> image = meta_.to_bytes();
  DRX_RETURN_IF_ERROR(meta_store_->write_at(0, image));
  DRX_RETURN_IF_ERROR(meta_store_->flush());
  return data_->flush();
}

Status DrxFile::extend(std::size_t dim, std::uint64_t delta) {
  obs::OpScope op("op.extend");
  if (dim >= rank()) {
    return Status(ErrorCode::kInvalidArgument, "dimension out of range");
  }
  if (delta == 0) return Status::ok();

  if (const auto first = meta_.extend_elements(dim, delta)) {
    // Zero-fill the appended segment (it is physically contiguous: new
    // chunks always append to the file).
    const std::uint64_t chunk_sz = meta_.chunk_bytes();
    std::vector<std::byte> zeros(checked_size(chunk_sz), std::byte{0});
    for (std::uint64_t q = *first; q < meta_.mapping.total_chunks(); ++q) {
      DRX_RETURN_IF_ERROR(data_->write_at(q * chunk_sz, zeros));
    }
  }
  return flush();
}

Status DrxFile::check_index(std::span<const std::uint64_t> index) const {
  if (index.size() != rank()) {
    return Status(ErrorCode::kInvalidArgument, "index rank mismatch");
  }
  for (std::size_t d = 0; d < rank(); ++d) {
    if (index[d] >= meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "element index out of bounds");
    }
  }
  return Status::ok();
}

Status DrxFile::read_element(std::span<const std::uint64_t> index,
                             std::span<std::byte> out) {
  obs::OpScope op("op.read_element");
  DRX_RETURN_IF_ERROR(check_index(index));
  DRX_CHECK(out.size() == element_bytes());
  const Index chunk = chunk_space_.chunk_of(index);
  const std::uint64_t q = meta_.mapping.address_of(chunk);
  const std::uint64_t off = chunk_space_.offset_in_chunk(index);
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->read_at(
      checked_add(checked_mul(q, meta_.chunk_bytes()),
                  checked_mul(off, element_bytes())),
      out);
}

Status DrxFile::write_element(std::span<const std::uint64_t> index,
                              std::span<const std::byte> value) {
  obs::OpScope op("op.write_element");
  DRX_RETURN_IF_ERROR(check_index(index));
  DRX_CHECK(value.size() == element_bytes());
  const Index chunk = chunk_space_.chunk_of(index);
  const std::uint64_t q = meta_.mapping.address_of(chunk);
  const std::uint64_t off = chunk_space_.offset_in_chunk(index);
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->write_at(
      checked_add(checked_mul(q, meta_.chunk_bytes()),
                  checked_mul(off, element_bytes())),
      value);
}

void DrxFile::scatter_chunk(std::span<const std::byte> chunk, const Box& clip,
                            const Box& box, MemoryOrder order,
                            std::span<std::byte> out) const {
  if (clip.empty()) return;
  obs::StageTimer copy(obs::Stage::kCopy);
  plan_cache_->scatter(clip, box, order, chunk, out);
}

void DrxFile::gather_chunk(std::span<std::byte> chunk, const Box& clip,
                           const Box& box, MemoryOrder order,
                           std::span<const std::byte> in) const {
  if (clip.empty()) return;
  obs::StageTimer copy(obs::Stage::kCopy);
  plan_cache_->gather(clip, box, order, chunk, in);
}

Status DrxFile::read_box(const Box& box, MemoryOrder order,
                         std::span<std::byte> out) {
  obs::OpScope op("op.read_box");
  if (box.rank() != rank()) {
    return Status(ErrorCode::kInvalidArgument, "box rank mismatch");
  }
  for (std::size_t d = 0; d < rank(); ++d) {
    if (box.hi[d] > meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "box exceeds array bounds");
    }
  }
  DRX_CHECK(out.size() == checked_mul(box.volume(), element_bytes()));
  if (box.empty()) return Status::ok();

  std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
  const Box chunk_range = chunk_space_.covering_chunks(box);
  Status status;
  for_each_index(chunk_range, [&](const Index& cidx) {
    if (!status.is_ok()) return;
    const std::uint64_t q = meta_.mapping.address_of(cidx);
    status = read_chunk(q, chunk_buf);
    if (!status.is_ok()) return;
    const Box clip = chunk_space_.chunk_box(cidx).intersect(box);
    scatter_chunk(chunk_buf, clip, box, order, out);
  });
  return status;
}

Status DrxFile::write_box(const Box& box, MemoryOrder order,
                          std::span<const std::byte> in) {
  obs::OpScope op("op.write_box");
  if (box.rank() != rank()) {
    return Status(ErrorCode::kInvalidArgument, "box rank mismatch");
  }
  for (std::size_t d = 0; d < rank(); ++d) {
    if (box.hi[d] > meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "box exceeds array bounds");
    }
  }
  DRX_CHECK(in.size() == checked_mul(box.volume(), element_bytes()));
  if (box.empty()) return Status::ok();

  std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
  const Box chunk_range = chunk_space_.covering_chunks(box);
  Status status;
  for_each_index(chunk_range, [&](const Index& cidx) {
    if (!status.is_ok()) return;
    const std::uint64_t q = meta_.mapping.address_of(cidx);
    const Box chunk_box = chunk_space_.chunk_box(cidx);
    const Box clip = chunk_box.intersect(box);
    // Read-modify-write unless the chunk is fully covered by the box.
    if (clip == chunk_box) {
      std::memset(chunk_buf.data(), 0, chunk_buf.size());
    } else {
      status = read_chunk(q, chunk_buf);
      if (!status.is_ok()) return;
    }
    gather_chunk(chunk_buf, clip, box, order, in);
    status = write_chunk(q, chunk_buf);
  });
  return status;
}

Status DrxFile::scan_read_all(MemoryOrder order, std::span<std::byte> out) {
  obs::OpScope op("op.scan_read_all");
  const Box full{Index(rank(), 0), meta_.element_bounds};
  DRX_CHECK(out.size() == checked_mul(full.volume(), element_bytes()));
  std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
  // One strictly sequential pass over the .xta file; F*^-1 recovers each
  // chunk's grid coordinates for placement.
  for (std::uint64_t q = 0; q < meta_.mapping.total_chunks(); ++q) {
    DRX_RETURN_IF_ERROR(read_chunk(q, chunk_buf));
    const Index cidx = meta_.mapping.index_of(q);
    const Box clip = chunk_space_.chunk_box(cidx).intersect(full);
    if (clip.empty()) continue;  // chunk entirely in the slack region
    scatter_chunk(chunk_buf, clip, full, order, out);
  }
  return Status::ok();
}

Status DrxFile::read_chunk(std::uint64_t address, std::span<std::byte> out) {
  DRX_CHECK(out.size() == meta_.chunk_bytes());
  static const obs::MetricId kReads = obs::counter_id("core.chunk_reads");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_read");
  obs::registry().counter(kReads).add();
  obs::registry().counter(kBytes).add(out.size());
  obs::profile_chunk(obs::ChunkOp::kRead, address, out.size());
  obs::ScopedSpan span("core.read_chunk", "core", out.size());
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->read_at(checked_mul(address, meta_.chunk_bytes()), out);
}

Status DrxFile::read_chunks(std::uint64_t first_address, std::uint64_t count,
                            std::span<std::byte> out) {
  DRX_CHECK(out.size() == checked_mul(count, meta_.chunk_bytes()));
  if (count == 0) return Status::ok();
  static const obs::MetricId kReads = obs::counter_id("core.chunk_reads");
  static const obs::MetricId kBatches =
      obs::counter_id("core.chunk_read_batches");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_read");
  obs::registry().counter(kReads).add(count);
  obs::registry().counter(kBatches).add();
  obs::registry().counter(kBytes).add(out.size());
  if (obs::profile_enabled()) {
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::profile_chunk(obs::ChunkOp::kRead, first_address + i,
                         meta_.chunk_bytes());
    }
  }
  obs::ScopedSpan span("core.read_chunks_batch", "core", out.size());
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->read_at(checked_mul(first_address, meta_.chunk_bytes()), out);
}

void DrxFile::prefetch_box(const Box& box) {
  if (prefetch_sink_ == nullptr) return;
  const Box clipped = box.intersect(Box{Index(rank(), 0), bounds()});
  if (clipped.empty()) return;
  // Element box -> covering chunk-index box -> sorted linear addresses ->
  // maximal contiguous runs, one hint per run.
  Box chunks(Index(rank(), 0), Index(rank(), 0));
  for (std::size_t d = 0; d < rank(); ++d) {
    chunks.lo[d] = clipped.lo[d] / meta_.chunk_shape[d];
    chunks.hi[d] = (clipped.hi[d] - 1) / meta_.chunk_shape[d] + 1;
  }
  std::vector<std::uint64_t> addresses;
  addresses.reserve(checked_size(chunks.volume()));
  for_each_index(chunks, [&](const Index& c) {
    addresses.push_back(meta_.mapping.address_of(c));
  });
  std::sort(addresses.begin(), addresses.end());
  std::size_t run_begin = 0;
  for (std::size_t i = 1; i <= addresses.size(); ++i) {
    if (i == addresses.size() || addresses[i] != addresses[i - 1] + 1) {
      prefetch_sink_->prefetch_range(addresses[run_begin],
                                     static_cast<std::uint64_t>(i - run_begin));
      run_begin = i;
    }
  }
}

Status DrxFile::write_chunk(std::uint64_t address,
                            std::span<const std::byte> in) {
  DRX_CHECK(in.size() == meta_.chunk_bytes());
  static const obs::MetricId kWrites = obs::counter_id("core.chunk_writes");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_written");
  obs::registry().counter(kWrites).add();
  obs::registry().counter(kBytes).add(in.size());
  obs::profile_chunk(obs::ChunkOp::kWrite, address, in.size());
  obs::ScopedSpan span("core.write_chunk", "core", in.size());
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->write_at(checked_mul(address, meta_.chunk_bytes()), in);
}

}  // namespace drx::core
