// Run-coalesced scatter/gather plans — the batched data plane behind the
// paper's "on the fly" transposition (Sec. I).
//
// A CopyPlan precomputes, for a fixed (chunk geometry, clip shape, box
// shape, memory order, element size), the decomposition of the transfer
// into maximal contiguous *runs*: dimensions whose strides are dense on
// both the chunk side and the box side are fused, and when the innermost
// varying dimension is contiguous on both sides an entire fused row moves
// as one std::memcpy. Otherwise the plan falls back to a strided loop
// with precomputed byte steps — still no per-element linearize() /
// offset_in_chunk() arithmetic, which is what the legacy element walk in
// scatter.hpp paid for every element.
//
// Plans depend only on *shapes*, never on positions: the clip/box base
// offsets are folded in at execute time, so every interior chunk of a box
// read shares one memoized plan (see PlanCache below).
//
// Observability: each execution bumps `core.copy.runs` (memcpy
// invocations) and `core.copy.elements`, and feeds the per-run byte size
// into the `core.copy.run_bytes` histogram — drx_doctor compares the two
// counters to flag element-granularity regressions (docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/chunk_space.hpp"
#include "core/coords.hpp"
#include "util/sync.hpp"

namespace drx::core {

class CopyPlan {
 public:
  /// `clip_shape` is the shape of the element box being moved (it lies
  /// inside one chunk of `cs`), `box_shape`/`box_order` describe the
  /// linearized user buffer the clip scatters into / gathers from.
  CopyPlan(const ChunkSpace& cs, std::uint64_t esize, Shape clip_shape,
           Shape box_shape, MemoryOrder box_order);

  /// Copies the `clip` elements of `chunk` into `out` (box `box`
  /// linearized in the plan's order). `clip.shape()` must equal the
  /// plan's clip shape, `box.shape()` its box shape.
  void scatter(const Box& clip, const Box& box,
               std::span<const std::byte> chunk,
               std::span<std::byte> out) const;

  /// Inverse: fills the `clip` elements of `chunk` from `in`.
  void gather(const Box& clip, const Box& box, std::span<std::byte> chunk,
              std::span<const std::byte> in) const;

  /// memcpy invocations per execution (the paper-facing coalescing
  /// metric: elements() / runs_per_execution() is the batching factor).
  [[nodiscard]] std::uint64_t runs_per_execution() const noexcept {
    return runs_;
  }
  /// Bytes moved by each memcpy run.
  [[nodiscard]] std::uint64_t run_bytes() const noexcept { return run_bytes_; }
  [[nodiscard]] std::uint64_t elements() const noexcept { return elements_; }
  /// True when the innermost fused dimension is dense on both sides, so
  /// whole rows (or larger fused blocks) move as single memcpys.
  [[nodiscard]] bool innermost_contiguous() const noexcept {
    return inner_count_ == 1;
  }

  [[nodiscard]] const Shape& clip_shape() const noexcept {
    return clip_shape_;
  }
  [[nodiscard]] const Shape& box_shape() const noexcept { return box_shape_; }
  [[nodiscard]] MemoryOrder box_order() const noexcept { return box_order_; }

 private:
  /// One non-innermost loop level: byte steps per iteration on each side.
  struct Loop {
    std::uint64_t extent;
    std::uint64_t chunk_step;
    std::uint64_t box_step;
  };

  [[nodiscard]] std::uint64_t chunk_base_bytes(const Box& clip) const;
  [[nodiscard]] std::uint64_t box_base_bytes(const Box& clip,
                                             const Box& box) const;
  void execute(std::size_t level, const std::byte* src, std::byte* dst,
               bool chunk_is_src) const;
  void note_execution() const;

  std::uint64_t esize_;
  Shape chunk_shape_;
  Shape chunk_strides_;  ///< element-unit strides of the chunk layout
  Shape box_strides_;    ///< element-unit strides of the box layout
  Shape clip_shape_;
  Shape box_shape_;
  MemoryOrder box_order_;

  std::vector<Loop> loops_;  ///< outer levels, outermost first
  std::uint64_t inner_count_ = 1;       ///< memcpys per innermost visit
  std::uint64_t inner_chunk_step_ = 0;  ///< byte step when inner_count_ > 1
  std::uint64_t inner_box_step_ = 0;
  std::uint64_t run_bytes_ = 0;
  std::uint64_t runs_ = 1;
  std::uint64_t elements_ = 1;
};

/// Bounded memoization of CopyPlans keyed on (clip shape, box shape,
/// order) for one file's fixed (ChunkSpace, esize). A box read visits one
/// boundary-clip shape class per box face plus one interior shape, so a
/// handful of entries serves arbitrarily many chunks; repeated reads of
/// the same box shape hit every time (`core.copy.plan_hits`).
/// Thread-safe: drxmp ranks and async completions share a file's cache.
class PlanCache {
 public:
  PlanCache(ChunkSpace cs, std::uint64_t esize);

  /// The memoized plan for this shape triple (built on first use).
  [[nodiscard]] std::shared_ptr<const CopyPlan> plan_for(
      const Shape& clip_shape, const Shape& box_shape, MemoryOrder order);

  /// Convenience wrappers: look up (or build) the plan and execute it.
  void scatter(const Box& clip, const Box& box, MemoryOrder order,
               std::span<const std::byte> chunk, std::span<std::byte> out);
  void gather(const Box& clip, const Box& box, MemoryOrder order,
              std::span<std::byte> chunk, std::span<const std::byte> in);

  [[nodiscard]] const ChunkSpace& chunk_space() const noexcept { return cs_; }
  [[nodiscard]] std::uint64_t esize() const noexcept { return esize_; }

 private:
  struct Entry {
    std::uint64_t hash;
    Shape clip_shape;
    Shape box_shape;
    MemoryOrder order;
    std::shared_ptr<const CopyPlan> plan;
  };

  ChunkSpace cs_;
  std::uint64_t esize_;
  util::Mutex mu_;
  std::vector<Entry> entries_ DRX_GUARDED_BY(mu_);
};

}  // namespace drx::core
