// drxmp.h-style programming interface (paper Sec. IV-C).
//
// The paper exposes DRX-MP through C-flavoured functions operating on
// opaque metadata handles:
//
//   int DRXMP_Init(DRXMDHdl*, int kdim, size_t* initsize, int* chkshape,
//                  DRXType dtype, DRXComm comm);
//   int DRXMP_Open(DRXMDHdl*, char* filename, char* mode);
//   int DRXMP_Close(DRXMDHdl);
//   int DRXMP_Terminate();
//   int DRXMP_Read(DRXMDHdl, DRXMDMemHdl, DRXMPStatus*);
//   int DRXMP_Read_all(DRXMDHdl, DRXMDMemHdl, DRXMPStatus*);
//
// This header reproduces that interface (with C++ types where the paper
// used raw pointers) over the DrxMpFile implementation. "All DRX-MP
// functions must be enclosed by MPI_Init() and MPI_Finalize()" becomes:
// all functions must run inside a simpi::run() rank body. Handles are
// per-rank (each rank holds its own replica, as in the paper).
#pragma once

#include <cstdint>
#include <string>

#include "core/drxmp.hpp"

namespace drx::core::api {

/// Error codes "defined in the context of the extendible array file
/// environment" (paper Sec. IV-C).
enum DrxmpError : int {
  DRXMP_SUCCESS = 0,
  DRXMP_ERR_INVALID_ARG = -1,
  DRXMP_ERR_NO_SUCH_FILE = -2,
  DRXMP_ERR_IO = -3,
  DRXMP_ERR_CORRUPT = -4,
  DRXMP_ERR_BAD_HANDLE = -5,
  DRXMP_ERR_NOT_INITIALIZED = -6,
};

/// DRXType of the paper: the element types RMA accumulate supports.
enum class DrxType : std::uint8_t {
  kInt = 0,
  kDouble = 1,
  kComplex = 2,
};

/// Opaque handle to the per-rank metadata replica (the paper's DRXMDHdl;
/// "similar to the use of a FILE handle in C").
using DrxmpHandle = std::int32_t;
inline constexpr DrxmpHandle kInvalidHandle = -1;

/// Description of a memory-resident array a transfer targets (the paper's
/// DRXMDMemHdl): base address, element box, and in-memory order.
struct MemHandle {
  void* base = nullptr;
  Box box;  ///< element box the buffer holds
  MemoryOrder order = MemoryOrder::kRowMajor;
};

/// Transfer outcome (the paper's DRXMPStatus).
struct DrxmpStatus {
  std::uint64_t elements = 0;  ///< elements transferred
  std::uint64_t bytes = 0;
};

/// Per-rank I/O counters drawn from this rank's obs metrics registry
/// (see docs/OBSERVABILITY.md for the naming scheme behind each field).
struct DrxmpIoStats {
  std::uint64_t independent_ops = 0;   ///< mpio.independent_ops
  std::uint64_t collective_ops = 0;    ///< mpio.collective_ops
  std::uint64_t bytes_read = 0;        ///< mpio.bytes_read
  std::uint64_t bytes_written = 0;     ///< mpio.bytes_written
  std::uint64_t cache_hits = 0;        ///< core.cache.hits
  std::uint64_t cache_misses = 0;      ///< core.cache.misses
  std::uint64_t cache_evictions = 0;   ///< core.cache.evictions
  std::uint64_t cache_writebacks = 0;  ///< core.cache.writebacks
  std::uint64_t pfs_seeks = 0;         ///< pfs.seeks
  std::uint64_t pfs_busy_us = 0;       ///< pfs.busy_us
};

/// The per-rank DRX-MP environment: owns every open array of this rank.
/// One Env per rank body; mirrors the library-global state the paper's
/// DRXMP_Terminate() tears down.
class Env {
 public:
  Env(simpi::Comm& comm, pfs::Pfs& fs) : comm_(&comm), fs_(&fs) {}
  ~Env() { (void)terminate(); }
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// DRXMP_Init: collective creation of a fresh principal array.
  int init(DrxmpHandle* handle, int kdim, const std::uint64_t* initsize,
           const std::uint64_t* chkshape, DrxType dtype,
           const std::string& filename);

  /// DRXMP_Open: collective open of an existing array. `mode` accepts
  /// "r" or "rw" (the file must exist, per the paper).
  int open(DrxmpHandle* handle, const std::string& filename,
           const std::string& mode);

  /// DRXMP_Close.
  int close(DrxmpHandle handle);

  /// DRXMP_Terminate: closes every open array and frees all structures.
  int terminate();

  /// DRXMP_Read / DRXMP_Read_all: read the elements of mem.box from the
  /// principal array into mem.base (independent / collective).
  int read(DrxmpHandle handle, const MemHandle& mem, DrxmpStatus* status);
  int read_all(DrxmpHandle handle, const MemHandle& mem,
               DrxmpStatus* status);

  /// DRXMP_Write / DRXMP_Write_all (the paper lists reading functions as
  /// examples "of the extensive list"; writes are symmetric).
  int write(DrxmpHandle handle, const MemHandle& mem, DrxmpStatus* status);
  int write_all(DrxmpHandle handle, const MemHandle& mem,
                DrxmpStatus* status);

  /// DRXMP_Extend: collective extension of one dimension.
  int extend(DrxmpHandle handle, int dim, std::uint64_t delta);

  /// Metadata field accessors (paper: "Various fields of the DRX-MP
  /// meta-data object can be accessed ... via various meta-data
  /// functions").
  int get_rank(DrxmpHandle handle, int* out);
  int get_bounds(DrxmpHandle handle, std::uint64_t* out, int capacity);
  int get_chunk_shape(DrxmpHandle handle, std::uint64_t* out, int capacity);
  int get_type(DrxmpHandle handle, DrxType* out);

  /// Snapshot of the calling rank's I/O counters (monotonic across the
  /// rank body; subtract two snapshots to meter a phase). Not collective.
  int get_io_stats(DrxmpIoStats* out);

 private:
  DrxMpFile* lookup(DrxmpHandle handle);
  int transfer(DrxmpHandle handle, const MemHandle& mem,
               DrxmpStatus* status, bool writing, bool collective);
  static int from_status(const Status& s);

  simpi::Comm* comm_;
  pfs::Pfs* fs_;
  std::vector<std::unique_ptr<DrxMpFile>> files_;  ///< index = handle
};

}  // namespace drx::core::api
