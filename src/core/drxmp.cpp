#include "core/drxmp.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <future>
#include <numeric>

#include "io/async_pool.hpp"
#include "io/config.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace drx::core {

namespace {
std::string meta_name(const std::string& name) { return name + ".xmd"; }
std::string data_name(const std::string& name) { return name + ".xta"; }

/// Chunks per pipelined zone-read round; 0 disables pipelining (legacy
/// single-shot read). Derived from the async-engine knobs so the feature
/// stays off unless DRX_IO_THREADS is set.
std::uint64_t zone_read_batch() {
  if (io::io_threads() <= 0) return 0;
  const std::uint64_t depth = io::prefetch_depth();
  return depth > 0 ? depth : 8;
}
}  // namespace

Result<DrxMpFile> DrxMpFile::create(simpi::Comm& comm, pfs::Pfs& fs,
                                    const std::string& name,
                                    Shape element_bounds, Shape chunk_shape,
                                    const DrxFile::Options& options) {
  if (element_bounds.size() != chunk_shape.size() || element_bounds.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "element bounds and chunk shape must have equal rank >= 1");
  }
  // Compressed arrays are created (and written) with the serial DrxFile;
  // DRX-MP serves them read-only via open(). Only an explicit codec
  // request errors — the DRX_COMPRESS env knob deliberately does not
  // reach collective creation, so setting it can never break writers.
  if (options.codec.value_or(codec::CodecId::kNone) !=
      codec::CodecId::kNone) {
    return Status(ErrorCode::kUnsupported,
                  "DRX-MP serves compressed arrays read-only; create them "
                  "with the serial DrxFile");
  }
  Metadata meta(options.dtype, options.in_chunk_order,
                std::move(element_bounds), std::move(chunk_shape));

  // Rank 0 creates the metadata file; all ranks open the data file
  // collectively through MPI-IO.
  std::uint8_t ok = 1;
  if (comm.rank() == 0) {
    auto created = fs.create(meta_name(name), /*overwrite=*/true);
    if (!created.is_ok()) {
      ok = 0;
    } else {
      const std::vector<std::byte> image = meta.to_bytes();
      if (!created.value().write_at(0, image).is_ok()) ok = 0;
    }
  }
  comm.bcast_value(ok, 0);
  if (ok == 0) {
    return Status(ErrorCode::kIoError, "metadata creation failed");
  }

  auto data = mpio::File::open(comm, fs, data_name(name),
                               mpio::kModeRdWr | mpio::kModeCreate);
  if (!data.is_ok()) return data.status();
  DrxMpFile file(comm, fs, name, std::move(meta), std::move(data).value());
  // The initial allocation reads back as zeros: grow the file (the PFS
  // zero-fills) collectively.
  DRX_RETURN_IF_ERROR(file.data_.set_size(file.meta_.data_file_bytes()));
  return file;
}

Result<DrxMpFile> DrxMpFile::open(simpi::Comm& comm, pfs::Pfs& fs,
                                  const std::string& name) {
  // Rank 0 reads the .xmd image and replicates it to every process
  // (paper Sec. IV-A: "When a file is opened, the content of the meta-data
  // file is replicated in all participating processes").
  std::vector<std::byte> image;
  std::uint8_t ok = 1;
  if (comm.rank() == 0) {
    auto handle = fs.open(meta_name(name));
    if (!handle.is_ok()) {
      ok = 0;
    } else {
      image.resize(checked_size(handle.value().size()));
      if (!handle.value().read_at(0, image).is_ok()) ok = 0;
    }
  }
  comm.bcast_value(ok, 0);
  if (ok == 0) {
    return Status(ErrorCode::kNotFound, "cannot read metadata: " + name);
  }
  comm.bcast_vector(image, 0);
  DRX_ASSIGN_OR_RETURN(Metadata meta, Metadata::from_bytes(image));

  auto data = mpio::File::open(comm, fs, data_name(name), mpio::kModeRdWr);
  if (!data.is_ok()) return data.status();
  if (data.value().get_size() < meta.stored_data_bytes()) {
    return Status(ErrorCode::kCorrupt, ".xta smaller than metadata requires");
  }
  return DrxMpFile(comm, fs, name, std::move(meta), std::move(data).value());
}

Status DrxMpFile::close() {
  DRX_RETURN_IF_ERROR(flush_metadata());
  aggregate_metrics();
  return data_.close();
}

obs::MetricsSnapshot DrxMpFile::aggregate_metrics() {
  obs::ScopedSpan span("core.aggregate_metrics", "core");
  obs::MetricsSnapshot local = obs::registry().snapshot();
  const std::vector<std::byte> mine = local.serialize();
  std::vector<std::vector<std::byte>> all = comm_->gatherv_bytes(mine, 0);
  if (comm_->rank() != 0) return local;

  obs::MetricsSnapshot total;
  for (const std::vector<std::byte>& image : all) {
    auto snap = obs::MetricsSnapshot::deserialize(image);
    if (!snap.is_ok()) {
      // A malformed peer snapshot only degrades observability; keep the
      // ranks we could decode rather than failing the close.
      DRX_LOG_WARN << "dropping undecodable metrics snapshot: "
                   << snap.status().message();
      continue;
    }
    total.merge(snap.value());
  }
  obs::set_aggregated_snapshot(total);
  return total;
}

Status DrxMpFile::flush_metadata() {
  comm_->barrier();
  std::uint8_t ok = 1;
  if (comm_->rank() == 0) {
    auto handle = fs_->open(meta_name(name_));
    if (!handle.is_ok()) {
      ok = 0;
    } else {
      const std::vector<std::byte> image = meta_.to_bytes();
      if (!handle.value().truncate(0).is_ok() ||
          !handle.value().write_at(0, image).is_ok()) {
        ok = 0;
      }
    }
  }
  comm_->bcast_value(ok, 0);
  if (ok == 0) {
    return Status(ErrorCode::kIoError, "metadata flush failed");
  }
  return Status::ok();
}

Box DrxMpFile::zone_element_box(const Distribution& dist, int proc) const {
  const std::vector<Box> zones = dist.zones_of(proc);
  Box out{Index(rank(), 0), Index(rank(), 0)};
  if (zones.empty()) return out;
  DRX_CHECK_MSG(zones.size() == 1,
                "zone_element_box requires a BLOCK distribution");
  const Box& z = zones.front();
  for (std::size_t d = 0; d < rank(); ++d) {
    out.lo[d] = checked_mul(z.lo[d], meta_.chunk_shape[d]);
    out.hi[d] = std::min(checked_mul(z.hi[d], meta_.chunk_shape[d]),
                         meta_.element_bounds[d]);
    out.lo[d] = std::min(out.lo[d], out.hi[d]);
  }
  return out;
}

Status DrxMpFile::transfer_chunks(std::span<const Index> chunks,
                                  void* staging, bool collective,
                                  bool writing) {
  if (meta_.compressed()) {
    if (writing) {
      return Status(ErrorCode::kUnsupported,
                    "compressed DRX-MP arrays are read-only");
    }
    return transfer_chunks_compressed(chunks, staging, collective);
  }
  const std::uint64_t cb = chunk_bytes();
  const std::size_t n = chunks.size();
  obs::ScopedSpan span(writing ? "core.write_chunks" : "core.read_chunks",
                       "core", checked_mul(n, cb));

  // Sort by linear address: the file view must be monotonic, and ascending
  // address order is what makes zone I/O a near-sequential disk scan
  // (paper Sec. II-A).
  std::vector<std::uint64_t> addresses(n);
  for (std::size_t i = 0; i < n; ++i) {
    addresses[i] = meta_.mapping.address_of(chunks[i]);
  }
  if (obs::profile_enabled()) {
    // Heatmap layer: every chunk this rank's zone transfer touches,
    // attributed to the calling rank (the zone owner).
    const obs::ChunkOp op =
        writing ? obs::ChunkOp::kWrite : obs::ChunkOp::kRead;
    for (std::size_t i = 0; i < n; ++i) {
      obs::profile_chunk(op, addresses[i], cb);
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return addresses[a] < addresses[b];
  });

  std::vector<std::uint64_t> ones(n, 1);
  std::vector<std::uint64_t> file_displs(n);
  std::vector<std::uint64_t> mem_displs(n);
  for (std::size_t i = 0; i < n; ++i) {
    file_displs[i] = checked_mul(addresses[order[i]], cb);
    mem_displs[i] = checked_mul(order[i], cb);
  }
  const simpi::Datatype chunk_type = simpi::Datatype::bytes(cb);
  const simpi::Datatype filetype =
      n == 0 ? simpi::Datatype::bytes(0)
             : simpi::Datatype::hindexed(ones, file_displs, chunk_type);
  const simpi::Datatype memtype =
      n == 0 ? simpi::Datatype::bytes(0)
             : simpi::Datatype::hindexed(ones, mem_displs, chunk_type);

  // With zero chunks a rank still participates in collective calls.
  data_.set_view(0, simpi::Datatype::bytes(1),
                 n == 0 ? simpi::Datatype::bytes(1) : filetype);
  const std::uint64_t count = n == 0 ? 0 : 1;
  if (writing) {
    return collective ? data_.write_at_all(0, staging, count, memtype)
                      : data_.write_at(0, staging, count, memtype);
  }
  return collective ? data_.read_at_all(0, staging, count, memtype)
                    : data_.read_at(0, staging, count, memtype);
}

Status DrxMpFile::transfer_chunks_compressed(std::span<const Index> chunks,
                                             void* staging, bool collective) {
  const std::uint64_t cb = chunk_bytes();
  const std::size_t n = chunks.size();
  obs::ScopedSpan span("core.read_chunks", "core", checked_mul(n, cb));

  std::vector<std::uint64_t> addresses(n);
  for (std::size_t i = 0; i < n; ++i) {
    addresses[i] = meta_.mapping.address_of(chunks[i]);
    if (addresses[i] >= meta_.chunk_table.size()) {
      return Status(ErrorCode::kOutOfRange, "chunk address out of range");
    }
  }
  if (obs::profile_enabled()) {
    for (std::size_t i = 0; i < n; ++i) {
      obs::profile_chunk(obs::ChunkOp::kRead, addresses[i], cb);
    }
  }

  // Sort by slot offset, not by linear address: rewrites before the array
  // reached DRX-MP may have relocated slots out of address order, and the
  // MPI file view must be monotonic in file displacement.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return meta_.chunk_table[addresses[a]].offset <
           meta_.chunk_table[addresses[b]].offset;
  });

  // Byte-granular view built from the slot table: block i covers exactly
  // the stored bytes of the i-th slot in file-offset order, landing packed
  // in a local compressed buffer.
  std::vector<std::uint64_t> blocklens(n);
  std::vector<std::uint64_t> file_displs(n);
  std::vector<std::uint64_t> mem_displs(n);
  std::uint64_t total_stored = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ChunkSlot& slot = meta_.chunk_table[addresses[order[i]]];
    blocklens[i] = slot.stored;
    file_displs[i] = slot.offset;
    mem_displs[i] = total_stored;
    total_stored = checked_add(total_stored, slot.stored);
  }
  std::vector<std::byte> comp(checked_size(total_stored));

  const simpi::Datatype byte_type = simpi::Datatype::bytes(1);
  const simpi::Datatype filetype =
      n == 0 ? simpi::Datatype::bytes(0)
             : simpi::Datatype::hindexed(blocklens, file_displs, byte_type);
  const simpi::Datatype memtype =
      n == 0 ? simpi::Datatype::bytes(0)
             : simpi::Datatype::hindexed(blocklens, mem_displs, byte_type);

  data_.set_view(0, byte_type, n == 0 ? byte_type : filetype);
  const std::uint64_t count = n == 0 ? 0 : 1;
  DRX_RETURN_IF_ERROR(collective
                          ? data_.read_at_all(0, comp.data(), count, memtype)
                          : data_.read_at(0, comp.data(), count, memtype));

  // Decode outside the collective so slow ranks never stall peers inside
  // the I/O call; each chunk lands at its caller-order staging position.
  static const obs::MetricId kDecodeUs =
      obs::histogram_id("core.codec.decode_us");
  auto* out = static_cast<std::byte*>(staging);
  for (std::size_t i = 0; i < n; ++i) {
    const ChunkSlot& slot = meta_.chunk_table[addresses[order[i]]];
    Status st;
    {
      obs::ScopedTimer timer(kDecodeUs);
      st = codec::decode(
          static_cast<codec::CodecId>(slot.codec),
          std::span<const std::byte>(comp.data() + mem_displs[i],
                                     slot.stored),
          checked_size(meta_.element_bytes()),
          std::span<std::byte>(out + checked_mul(order[i], cb),
                               checked_size(cb)));
    }
    if (!st.is_ok()) {
      if (obs::flight_enabled()) {
        const Status ds = obs::dump_flight("corrupt-chunk");
        if (!ds.is_ok()) {
          DRX_LOG(kError) << "flight dump failed: " << ds.to_string();
        }
      }
      return st;
    }
  }
  return Status::ok();
}

Status DrxMpFile::read_chunks(std::span<const Index> chunks,
                              std::span<std::byte> staging, bool collective) {
  DRX_CHECK(staging.size() ==
            checked_mul(chunks.size(), chunk_bytes()));
  return transfer_chunks(chunks, staging.data(), collective,
                         /*writing=*/false);
}

Status DrxMpFile::write_chunks(std::span<const Index> chunks,
                               std::span<const std::byte> staging,
                               bool collective) {
  DRX_CHECK(staging.size() ==
            checked_mul(chunks.size(), chunk_bytes()));
  return transfer_chunks(chunks, const_cast<std::byte*>(staging.data()),
                         collective, /*writing=*/true);
}

Status DrxMpFile::read_my_zone(const Distribution& dist, MemoryOrder order,
                               std::span<std::byte> out, bool collective) {
  obs::OpScope op("op.read_my_zone");
  const Box box = zone_element_box(dist, comm_->rank());
  DRX_CHECK(out.size() == checked_mul(box.volume(), meta_.element_bytes()));

  std::vector<Index> chunks;
  for (const Box& z : dist.zones_of(comm_->rank())) {
    for_each_index(z, [&](const Index& c) { chunks.push_back(c); });
  }

  if (const std::uint64_t batch = zone_read_batch(); batch > 0) {
    return read_my_zone_pipelined(dist, order, out, collective, chunks, box,
                                  batch);
  }

  std::vector<std::byte> staging(
      checked_size(checked_mul(chunks.size(), chunk_bytes())));
  DRX_RETURN_IF_ERROR(read_chunks(chunks, staging, collective));

  obs::StageTimer copy(obs::Stage::kCopy);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const Box clip = chunk_space_.chunk_box(chunks[i]).intersect(box);
    if (clip.empty()) continue;
    plan_cache_->scatter(clip, box, order,
                         std::span<const std::byte>(staging).subspan(
                             checked_size(checked_mul(i, chunk_bytes())),
                             checked_size(chunk_bytes())),
                         out);
  }
  return Status::ok();
}

Status DrxMpFile::read_my_zone_pipelined(const Distribution& dist,
                                         MemoryOrder order,
                                         std::span<std::byte> out,
                                         bool collective,
                                         std::span<const Index> chunks,
                                         const Box& box, std::uint64_t batch) {
  const std::uint64_t cb = chunk_bytes();
  const auto n = static_cast<std::uint64_t>(chunks.size());

  // Collective rounds must line up across ranks. The distribution is
  // derived from replicated metadata, so every rank computes the same
  // global round count locally: the surplus rounds of chunk-poor ranks
  // participate with empty chunk lists.
  std::uint64_t rounds = ceil_div(n, batch);
  if (collective) {
    for (int r = 0; r < comm_->size(); ++r) {
      std::uint64_t count = 0;
      for (const Box& z : dist.zones_of(r)) count += z.volume();
      rounds = std::max(rounds, ceil_div(count, batch));
    }
  }
  if (rounds == 0) return Status::ok();  // every rank agrees: nothing to read
  obs::ScopedSpan span("core.zone_read_pipelined", "core",
                       checked_mul(n, cb));

  // One worker keeps the collective call order identical on every rank;
  // the pipeline depth is one round, double-buffered.
  io::AsyncIoPool pool({.threads = 1, .queue_capacity = 2});
  std::array<std::vector<std::byte>, 2> staging;

  const auto round_chunks = [&](std::uint64_t r) {
    const std::uint64_t begin = std::min(n, r * batch);
    const std::uint64_t end = std::min(n, (r + 1) * batch);
    return chunks.subspan(checked_size(begin), checked_size(end - begin));
  };
  const auto issue = [&](std::uint64_t r) {
    const std::span<const Index> part = round_chunks(r);
    std::vector<std::byte>& buf = staging[r % 2];
    buf.resize(checked_size(checked_mul(part.size(), cb)));
    return pool.submit_with_future(
        obs::current_op(),
        [this, part, bufspan = std::span<std::byte>(buf), collective] {
          return read_chunks(part, bufspan, collective);
        });
  };

  std::future<Status> inflight = issue(0);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Collective errors surface identically on every rank (the aggregator
    // result is allreduced), so breaking out of the round loop together
    // is deadlock-free.
    DRX_RETURN_IF_ERROR(inflight.get());
    if (r + 1 < rounds) inflight = issue(r + 1);
    const std::span<const Index> part = round_chunks(r);
    const std::span<const std::byte> buf(staging[r % 2]);
    obs::StageTimer copy(obs::Stage::kCopy);
    for (std::size_t i = 0; i < part.size(); ++i) {
      const Box clip = chunk_space_.chunk_box(part[i]).intersect(box);
      if (clip.empty()) continue;
      plan_cache_->scatter(
          clip, box, order,
          buf.subspan(checked_size(checked_mul(i, cb)), checked_size(cb)),
          out);
    }
  }
  return Status::ok();
}

Status DrxMpFile::write_my_zone(const Distribution& dist, MemoryOrder order,
                                std::span<const std::byte> in,
                                bool collective) {
  obs::OpScope op("op.write_my_zone");
  const Box box = zone_element_box(dist, comm_->rank());
  DRX_CHECK(in.size() == checked_mul(box.volume(), meta_.element_bytes()));

  std::vector<Index> chunks;
  for (const Box& z : dist.zones_of(comm_->rank())) {
    for_each_index(z, [&](const Index& c) { chunks.push_back(c); });
  }
  std::vector<std::byte> staging(
      checked_size(checked_mul(chunks.size(), chunk_bytes())), std::byte{0});
  {
    obs::StageTimer copy(obs::Stage::kCopy);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const Box clip = chunk_space_.chunk_box(chunks[i]).intersect(box);
      if (clip.empty()) continue;
      plan_cache_->gather(clip, box, order,
                          std::span<std::byte>(staging).subspan(
                              checked_size(checked_mul(i, chunk_bytes())),
                              checked_size(chunk_bytes())),
                          in);
    }
  }
  return write_chunks(chunks, staging, collective);
}

Status DrxMpFile::read_box_all(const Box& box, MemoryOrder order,
                               std::span<std::byte> out) {
  obs::OpScope op("op.read_box_all");
  return read_box_impl(box, order, out, /*collective=*/true);
}

Status DrxMpFile::read_box_independent(const Box& box, MemoryOrder order,
                                       std::span<std::byte> out) {
  obs::OpScope op("op.read_box_independent");
  return read_box_impl(box, order, out, /*collective=*/false);
}

Status DrxMpFile::read_box_impl(const Box& box, MemoryOrder order,
                                std::span<std::byte> out, bool collective) {
  DRX_CHECK(box.rank() == rank());
  DRX_CHECK(out.size() == checked_mul(box.volume(), meta_.element_bytes()));
  for (std::size_t d = 0; d < rank(); ++d) {
    if (!box.empty() && box.hi[d] > meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "box exceeds array bounds");
    }
  }

  std::vector<Index> chunks;
  if (!box.empty()) {
    for_each_index(chunk_space_.covering_chunks(box),
                   [&](const Index& c) { chunks.push_back(c); });
  }
  std::vector<std::byte> staging(
      checked_size(checked_mul(chunks.size(), chunk_bytes())));
  DRX_RETURN_IF_ERROR(read_chunks(chunks, staging, collective));

  obs::StageTimer copy(obs::Stage::kCopy);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const Box clip = chunk_space_.chunk_box(chunks[i]).intersect(box);
    if (clip.empty()) continue;
    plan_cache_->scatter(clip, box, order,
                         std::span<const std::byte>(staging).subspan(
                             checked_size(checked_mul(i, chunk_bytes())),
                             checked_size(chunk_bytes())),
                         out);
  }
  return Status::ok();
}

Status DrxMpFile::write_box_all(const Box& box, MemoryOrder order,
                                std::span<const std::byte> in) {
  obs::OpScope op("op.write_box_all");
  return write_box_impl(box, order, in, /*collective=*/true);
}

Status DrxMpFile::write_box_independent(const Box& box, MemoryOrder order,
                                        std::span<const std::byte> in) {
  obs::OpScope op("op.write_box_independent");
  return write_box_impl(box, order, in, /*collective=*/false);
}

Status DrxMpFile::write_box_impl(const Box& box, MemoryOrder order,
                                 std::span<const std::byte> in,
                                 bool collective) {
  DRX_CHECK(box.rank() == rank());
  DRX_CHECK(in.size() == checked_mul(box.volume(), meta_.element_bytes()));
  for (std::size_t d = 0; d < rank(); ++d) {
    if (!box.empty() && box.hi[d] > meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "box exceeds array bounds");
    }
  }

  std::vector<Index> chunks;
  if (!box.empty()) {
    for_each_index(chunk_space_.covering_chunks(box),
                   [&](const Index& c) { chunks.push_back(c); });
  }
  std::vector<std::byte> staging(
      checked_size(checked_mul(chunks.size(), chunk_bytes())), std::byte{0});

  // Boundary chunks not fully covered by the box (nor by the slack beyond
  // the array bounds) must be read-modify-written. The read is independent:
  // different ranks have different RMW sets, so it cannot be collective.
  const Box live{Index(rank(), 0), meta_.element_bounds};
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const Box cbox = chunk_space_.chunk_box(chunks[i]);
    const Box covered = cbox.intersect(box);
    const Box alive = cbox.intersect(live);
    const bool fully_covered = covered == alive;
    auto slot = std::span<std::byte>(staging).subspan(
        checked_size(checked_mul(i, chunk_bytes())),
        checked_size(chunk_bytes()));
    if (!fully_covered) {
      Index single[] = {chunks[i]};
      DRX_RETURN_IF_ERROR(
          read_chunks(std::span<const Index>(single, 1), slot,
                      /*collective=*/false));
    }
    if (!covered.empty()) {
      obs::StageTimer copy(obs::Stage::kCopy);
      plan_cache_->gather(covered, box, order, slot, in);
    }
  }
  return write_chunks(chunks, staging, collective);
}

Status DrxMpFile::extend_all(std::size_t dim, std::uint64_t delta) {
  obs::OpScope op("op.extend_all");
  if (dim >= rank()) {
    return Status(ErrorCode::kInvalidArgument, "dimension out of range");
  }
  if (meta_.compressed()) {
    // set_size(data_file_bytes) assumes the dense layout; growing a slot
    // table collectively is out of scope for the read-only MP path.
    return Status(ErrorCode::kUnsupported,
                  "compressed DRX-MP arrays are read-only");
  }
  comm_->barrier();
  if (delta > 0) {
    // Deterministic, identical update on every rank keeps the replicated
    // metadata consistent without communication.
    if (meta_.extend_elements(dim, delta).has_value()) {
      DRX_RETURN_IF_ERROR(data_.set_size(meta_.data_file_bytes()));
    }
  }
  return flush_metadata();
}

GlobalAccessor::GlobalAccessor(simpi::Comm& comm, const Metadata& meta,
                               const Distribution& dist, MemoryOrder order,
                               std::span<std::byte> zone)
    : comm_(&comm),
      meta_(&meta),
      dist_(dist),
      order_(order),
      chunk_space_(meta.chunk_space()),
      window_(comm, zone) {
  // Precompute every rank's clipped zone element box (identical on all
  // ranks — derived from replicated metadata).
  zone_boxes_.reserve(static_cast<std::size_t>(comm.size()));
  for (int r = 0; r < comm.size(); ++r) {
    const std::vector<Box> zones = dist_.zones_of(r);
    Box out{Index(meta.rank(), 0), Index(meta.rank(), 0)};
    if (!zones.empty()) {
      DRX_CHECK_MSG(zones.size() == 1,
                    "GlobalAccessor requires a BLOCK distribution");
      for (std::size_t d = 0; d < meta.rank(); ++d) {
        out.lo[d] = checked_mul(zones[0].lo[d], meta.chunk_shape[d]);
        out.hi[d] = std::min(checked_mul(zones[0].hi[d], meta.chunk_shape[d]),
                             meta.element_bounds[d]);
        out.lo[d] = std::min(out.lo[d], out.hi[d]);
      }
    }
    zone_boxes_.push_back(std::move(out));
  }
  const Box& mine = zone_boxes_[static_cast<std::size_t>(comm.rank())];
  DRX_CHECK_MSG(zone.size() ==
                    checked_mul(mine.volume(), meta.element_bytes()),
                "zone buffer size does not match the zone element box");
}

int GlobalAccessor::owner_of(std::span<const std::uint64_t> element) const {
  return dist_.owner_of(chunk_space_.chunk_of(element));
}

std::pair<int, std::uint64_t> GlobalAccessor::locate(
    std::span<const std::uint64_t> element, std::uint64_t esize) const {
  DRX_CHECK(esize == meta_->element_bytes());
  for (std::size_t d = 0; d < meta_->rank(); ++d) {
    DRX_CHECK_MSG(element[d] < meta_->element_bounds[d],
                  "element index out of bounds");
  }
  const int target = owner_of(element);
  const Box& box = zone_boxes_[static_cast<std::size_t>(target)];
  Index rel(meta_->rank());
  for (std::size_t d = 0; d < meta_->rank(); ++d) {
    rel[d] = element[d] - box.lo[d];
  }
  const std::uint64_t linear = linearize(rel, box.shape(), order_);
  return {target, checked_mul(linear, esize)};
}

}  // namespace drx::core
