// The paper's core contribution: the axial-vector mapping function F*()
// and its inverse F*^-1() for dense extendible arrays (Otoo & Rotem,
// CLUSTER 2007, Section III).
//
// The mapping operates on the *chunk grid*: indices are chunk coordinates
// and addresses are linear chunk positions in the .xta file. The array
// grows by adjoining a *segment* of chunks along any dimension l; within a
// segment, addresses follow row-major order with l as the least-varying
// dimension (all other dimensions keep their relative order). Each
// dimension keeps an axial vector of expansion records
//
//     Γ_l<i> = ( N*_l  — first chunk index the segment covers,
//                M*_l  — linear address of the segment's first chunk,
//                C[k]  — multiplying coefficients inside the segment,
//                S     — byte displacement of the segment in the file )
//
// Repeated extensions of the same dimension with no intervening extension
// of another dimension ("uninterrupted" extensions) are merged into the
// existing record.
//
// Complexity: F* is O(k + log E) and F*^-1 is O(k + log E), where E is the
// total number of expansion records — the computed-access property the
// paper contrasts with HDF5's B-tree chunk index.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/coords.hpp"
#include "util/error.hpp"
#include "util/serde.hpp"

namespace drx::core {

/// One expansion record of an axial vector (paper Fig. 3b).
struct ExpansionRecord {
  /// First chunk index of the extended dimension the segment covers
  /// (the paper's N*_l at expansion time).
  std::uint64_t start_index = 0;

  /// Linear chunk address of the segment's first chunk (the paper's M*_l).
  /// kUnallocated marks the sentinel record of a never-extended dimension.
  std::int64_t start_address = 0;

  /// Multiplying coefficients C[0..k-1]; C[l] is the segment's
  /// per-extended-index stride, C[j] (j != l) the row-major coefficients
  /// of the remaining dimensions in their relative order.
  std::vector<std::uint64_t> coeffs;

  /// Byte displacement of the segment in the principal array file (the
  /// paper's S field; address * chunk bytes since segments are appended).
  std::uint64_t file_displacement = 0;

  static constexpr std::int64_t kUnallocated = -1;

  friend bool operator==(const ExpansionRecord&,
                         const ExpansionRecord&) = default;
};

/// The axial vector Γ_l of one dimension: its expansion history.
class AxialVector {
 public:
  [[nodiscard]] const std::vector<ExpansionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_.size();
  }

  /// Modified binary search (paper Sec. III-B): the record with the
  /// largest start_index <= index. Precondition: a record with
  /// start_index 0 exists (the sentinel or the initial segment).
  [[nodiscard]] const ExpansionRecord& find(std::uint64_t index) const;

  void append(ExpansionRecord record);
  [[nodiscard]] ExpansionRecord& back();

  friend bool operator==(const AxialVector&, const AxialVector&) = default;

 private:
  std::vector<ExpansionRecord> records_;
};

/// The complete mapping state of a k-dimensional extendible chunk grid.
class AxialMapping {
 public:
  /// Creates the grid with `initial_bounds` chunks per dimension (all
  /// bounds >= 1). The initial allocation is recorded as the first segment
  /// of the last dimension, matching the paper's running example where
  /// A[4][3][1]'s initial block lives in Γ_2 with start index and address 0.
  explicit AxialMapping(Shape initial_bounds);

  [[nodiscard]] std::size_t rank() const noexcept { return bounds_.size(); }

  /// Current chunk-grid bounds N*_0 .. N*_{k-1}.
  [[nodiscard]] const Shape& bounds() const noexcept { return bounds_; }

  /// Total allocated chunks; equals the product of bounds().
  [[nodiscard]] std::uint64_t total_chunks() const noexcept { return total_; }

  [[nodiscard]] const AxialVector& axial_vector(std::size_t dim) const;

  /// Total number of expansion records across all axial vectors (E).
  [[nodiscard]] std::uint64_t total_records() const noexcept;

  /// Extends dimension `dim` by `delta` chunk indices, allocating one
  /// segment (or growing the previous one when the extension is
  /// uninterrupted). Returns the linear address of the first new chunk.
  std::uint64_t extend(std::size_t dim, std::uint64_t delta);

  /// F*: linear chunk address of chunk `index`. Aborts if out of bounds
  /// (bounds are replicated metadata; an out-of-range index is a caller
  /// bug, not an I/O condition).
  [[nodiscard]] std::uint64_t address_of(
      std::span<const std::uint64_t> index) const;

  /// F*^-1: chunk index of linear address `address` (< total_chunks()).
  [[nodiscard]] Index index_of(std::uint64_t address) const;

  // ---- persistence (.xmd payload) --------------------------------------

  void serialize(ByteWriter& out) const;
  [[nodiscard]] static Result<AxialMapping> deserialize(ByteReader& in);

  friend bool operator==(const AxialMapping&, const AxialMapping&) = default;

 private:
  AxialMapping() = default;

  /// (dim, record index) of one allocation in start-address order; used by
  /// the O(log E) inverse search.
  struct HistoryEntry {
    std::uint32_t dim = 0;
    std::uint32_t record = 0;
    std::uint64_t start_address = 0;
    std::uint64_t chunk_count = 0;  ///< chunks the segment currently holds

    friend bool operator==(const HistoryEntry&,
                           const HistoryEntry&) = default;
  };

  /// Recomputes C[] for a fresh segment extending `dim`.
  [[nodiscard]] std::vector<std::uint64_t> segment_coeffs(
      std::size_t dim) const;

  Shape bounds_;
  std::uint64_t total_ = 0;
  std::vector<AxialVector> axial_;
  std::vector<HistoryEntry> history_;  ///< ascending start_address
};

}  // namespace drx::core
