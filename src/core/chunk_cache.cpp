#include "core/chunk_cache.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace drx::core {

namespace {
// Cache counters mirror ChunkCache::Stats into the obs registry so cache
// behaviour lands in cross-rank aggregates and bench JSON automatically.
const obs::MetricId kHits = obs::counter_id("core.cache.hits");
const obs::MetricId kMisses = obs::counter_id("core.cache.misses");
const obs::MetricId kEvictions = obs::counter_id("core.cache.evictions");
const obs::MetricId kWritebacks = obs::counter_id("core.cache.writebacks");
const obs::MetricId kDeferredWb =
    obs::counter_id("core.cache.deferred_writebacks");
const obs::MetricId kWriteQueueHits =
    obs::counter_id("core.cache.write_queue_hits");
const obs::MetricId kPrefIssued = obs::counter_id("core.cache.prefetch_issued");
const obs::MetricId kPrefUseful = obs::counter_id("core.cache.prefetch_useful");
const obs::MetricId kPrefWasted = obs::counter_id("core.cache.prefetch_wasted");
const obs::MetricId kPrefWaits = obs::counter_id("core.cache.prefetch_waits");
const obs::MetricId kPrefWaitUs =
    obs::histogram_id("core.cache.prefetch_wait_us");
const obs::MetricId kAdmitBypasses =
    obs::counter_id("core.cache.admit_bypasses");
const obs::MetricId kAdmitPromotions =
    obs::counter_id("core.cache.admit_promotions");
const obs::MetricId kFastHits = obs::counter_id("core.cache.fast_hits");
const obs::MetricId kCapacityBorrows =
    obs::counter_id("core.cache.capacity_borrows");

// FastSlot::word layout: the top bit marks a published slot; the low bits
// count outstanding FastPins. word == 0 means the slot is free.
constexpr std::uint64_t kFastValid = std::uint64_t{1} << 63;
}  // namespace

ChunkCache::ChunkCache(DrxFile& file, std::size_t capacity,
                       const AsyncOptions& async)
    : file_(&file), capacity_(capacity) {
  DRX_CHECK(capacity >= 1);
  int want = async.shards != 0 ? async.shards : io::cache_shards();
  if (want <= 0) want = 1;
  std::size_t n = 1;
  while (n * 2 <= static_cast<std::size_t>(want) && n * 2 <= 64) n *= 2;
  // Every shard needs at least one frame of capacity.
  while (n > 1 && capacity / n == 0) n /= 2;
  shard_count_ = n;
  shard_mask_ = n - 1;
  shards_ = std::make_unique<Shard[]>(n);
  fast_enabled_ = io::cache_fast_reads();
  shard_access_ids_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shard_access_ids_.push_back(obs::counter_id(
        "core.cache.shard." + std::to_string(i) + ".accesses"));
  }
  const std::size_t base = capacity / n;
  const std::size_t extra = capacity % n;
  for (std::size_t i = 0; i < n; ++i) {
    Shard& s = shards_[i];
    const std::size_t shard_capacity = base + (i < extra ? 1 : 0);
    // Ghost filter: power-of-two table of recently bypassed addresses,
    // sized a few multiples of the shard capacity so probation outlives
    // residency (bounded at 4096 slots of 8 bytes — no chunk buffers).
    std::size_t ghost_slots = 64;
    while (ghost_slots < 4 * shard_capacity && ghost_slots < 4096) {
      ghost_slots <<= 1;
    }
    std::vector<std::uint64_t> ghost(ghost_slots, kNoAddress);
    // Fast-read table: 4x the shard capacity so address collisions (two
    // resident chunks hashing to one slot — the loser stays unpublished
    // and every read of it takes the mutex path) stay rare even with the
    // whole shard resident. Slots are pointer-sized metadata, not chunk
    // buffers, so the 4x headroom is cheap.
    std::size_t fast_slots = 8;
    while (fast_slots < 4 * shard_capacity && fast_slots < 4096) {
      fast_slots <<= 1;
    }
    s.fast = std::make_unique<FastSlot[]>(fast_slots);
    s.fast_mask = fast_slots - 1;
    // Allocation above happens before the lock on purpose: the shard
    // mutexes only exist so TSA sees guarded fields written under their
    // capability (no concurrency yet — the cache is being constructed).
    util::MutexLock lock(s.mu);
    s.capacity = shard_capacity;
    s.ghost = std::move(ghost);
  }
  if (async.io_threads > 0) {
    io::AsyncIoPool::Options pool_options;
    pool_options.threads = async.io_threads;
    pool_options.queue_capacity = std::max<std::size_t>(16, 2 * capacity);
    pool_ = std::make_unique<io::AsyncIoPool>(pool_options);
    prefetch_depth_ = async.prefetch_depth;
    // Become the file's prefetch sink so higher-layer hints
    // (DrxFile::prefetch_box) turn into background faults.
    if (file_->prefetch_sink() == nullptr) file_->set_prefetch_sink(this);
  }
}

ChunkCache::~ChunkCache() {
  const Status st = flush();
  if (!st.is_ok()) {
    // The destructor cannot return the failure; a silent drop here would
    // lose a deferred write error for good, so it goes to the error log.
    DRX_LOG(kError) << "ChunkCache destroyed with unflushed write-back error: "
                    << st.to_string();
  }
  if (file_->prefetch_sink() == this) file_->set_prefetch_sink(nullptr);
  pool_.reset();  // queue is empty after flush(); joins the workers
}

// Lock-order suppression (docs/STATIC_ANALYSIS.md): the pair lock
// acquires two shard mutexes through references, which the analysis
// cannot name as capabilities. Deadlock freedom comes from the total
// order (lower shard index first, established in the initializer list);
// callers re-assert the capabilities with Shard::mu.assert_held().
ChunkCache::ShardPairLock::ShardPairLock(ChunkCache& cache, std::size_t a,
                                         std::size_t b)
    DRX_NO_THREAD_SAFETY_ANALYSIS
    : first_(cache.shards_[std::min(a, b)].mu),
      second_(cache.shards_[std::max(a, b)].mu),
      same_(a == b) {
  first_.lock();
  if (!same_) second_.lock();
}

// Release order is the reverse of acquisition (see ctor suppression note).
ChunkCache::ShardPairLock::~ShardPairLock() DRX_NO_THREAD_SAFETY_ANALYSIS {
  if (!same_) second_.unlock();
  first_.unlock();
}

std::size_t ChunkCache::chunk_size() const {
  return checked_size(file_->chunk_bytes());
}

void ChunkCache::note_access(Shard& s, std::size_t index) const {
  s.accesses.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter(shard_access_ids_[index]).add();
}

bool ChunkCache::record_error(const Status& status, bool surfaced) {
  util::MutexLock lock(error_mu_);
  if (last_error_.is_ok()) {
    last_error_ = status;
    error_unsurfaced_ = !surfaced;
    return !surfaced;
  }
  return false;
}

Status ChunkCache::take_unsurfaced_error() {
  util::MutexLock lock(error_mu_);
  if (!last_error_.is_ok() && error_unsurfaced_) {
    error_unsurfaced_ = false;
    return last_error_;
  }
  return Status::ok();
}

std::unique_ptr<std::byte[]> ChunkCache::take_buffer_locked(Shard& s) {
  if (!s.free_buffers.empty()) {
    std::unique_ptr<std::byte[]> buffer = std::move(s.free_buffers.back());
    s.free_buffers.pop_back();
    return buffer;
  }
  // Cold start only: steady state recycles eviction buffers, so the miss
  // path never allocates while holding the shard lock.
  // drx-lint: allow(cache-lock-alloc) cold-start fill; bounded by capacity_
  return std::make_unique<std::byte[]>(chunk_size());
}

void ChunkCache::recycle_buffer_locked(Shard& s,
                                       std::unique_ptr<std::byte[]> buffer) {
  if (s.free_buffers.size() < s.capacity) {
    s.free_buffers.push_back(std::move(buffer));
  }
}

void ChunkCache::maybe_publish_locked(Shard& s, std::uint64_t address,
                                      Frame& frame) {
  if (!fast_enabled_ || frame.published) return;
  // Never publish: frames with writer intent (their stores would race the
  // fast memcpy), frames mid-load/flush, and prefetched frames (the first
  // demand pin must go through the mutex so prefetch_useful accounting
  // and LRU state stay exact).
  if (frame.write_pins > 0 || frame.loading || frame.flushing ||
      frame.prefetched) {
    return;
  }
  // Two-way probe: a chunk may publish into its home slot or the next
  // one. Without the second candidate a hash collision between two
  // resident chunks permanently demotes the loser to the mutex path —
  // on a fully resident hot set that is ~1/slots_per_chunk of all reads.
  const std::size_t h = fast_slot_index(s, address);
  for (std::size_t k = 0; k < 2; ++k) {
    FastSlot& slot = s.fast[(h + k) & s.fast_mask];
    // Occupied by a colliding resident chunk: leave that one published.
    if (slot.word.load(std::memory_order_relaxed) != 0) continue;
    slot.address.store(address, std::memory_order_relaxed);
    slot.data.store(frame.data.get(), std::memory_order_relaxed);
    // The release pairs with the reader's acquire on `word`: a reader
    // that observes kFastValid also observes address/data above and the
    // buffer fill that happened-before this publish (docs/SERVING.md).
    slot.word.store(kFastValid, std::memory_order_release);
    frame.published = true;
    return;
  }
}

void ChunkCache::unpublish_locked(Shard& s, std::uint64_t address,
                                  Frame& frame) {
  if (!frame.published) return;
  // Find which of the two probe slots holds this chunk. Slot addresses
  // only change under s.mu (held here), so the scan is stable.
  const std::size_t h = fast_slot_index(s, address);
  std::size_t found = h;
  for (std::size_t k = 0; k < 2; ++k) {
    const std::size_t idx = (h + k) & s.fast_mask;
    if (s.fast[idx].address.load(std::memory_order_relaxed) == address) {
      found = idx;
      break;
    }
  }
  FastSlot& slot = s.fast[found];
  DRX_CHECK_MSG(slot.address.load(std::memory_order_relaxed) == address,
                "published frame missing from its fast-slot probe window");
  // Clear the valid bit (new fast pins now fail), then drain: the acquire
  // load pairs with FastPin's release decrement, so every fast reader's
  // copy happens-before any store into the buffer after this returns.
  std::uint64_t w = slot.word.load(std::memory_order_relaxed);
  while (!slot.word.compare_exchange_weak(w, w & ~kFastValid,
                                          std::memory_order_relaxed)) {
  }
  while (slot.word.load(std::memory_order_acquire) != 0) {
    // Readers drop their pins without taking s.mu, so spinning under the
    // shard lock cannot deadlock; a fast pin spans one memcpy, so the
    // spin is bounded by that copy.
    std::this_thread::yield();
  }
  slot.address.store(kNoAddress, std::memory_order_relaxed);
  slot.data.store(nullptr, std::memory_order_relaxed);
  frame.published = false;
}

std::optional<ChunkCache::FastPin> ChunkCache::try_pin_fast(
    std::uint64_t address) {
  if (!fast_enabled_) return std::nullopt;
  const std::size_t si = shard_index(address);
  Shard& s = shards_[si];
  const std::size_t h = fast_slot_index(s, address);
  for (std::size_t k = 0; k < 2; ++k) {
    FastSlot& slot = s.fast[(h + k) & s.fast_mask];
    for (int attempt = 0; attempt < 4; ++attempt) {
      std::uint64_t w = slot.word.load(std::memory_order_acquire);
      if ((w & kFastValid) == 0) break;  // next probe slot
      if (slot.address.load(std::memory_order_relaxed) != address) {
        break;  // slot owned by a colliding chunk; try the next probe
      }
      if (!slot.word.compare_exchange_weak(w, w + 1, std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
        continue;  // raced a publish/unpublish or another pin; retry
      }
      // Pinned. Re-check the address: between the loads above and the CAS
      // the slot may have been unpublished and republished for a different
      // chunk (ABA). The pin we now hold blocks any FURTHER unpublish from
      // completing, so a matching address is stable until we release.
      if (slot.address.load(std::memory_order_relaxed) != address) {
        slot.word.fetch_sub(1, std::memory_order_release);
        break;
      }
      std::byte* data = slot.data.load(std::memory_order_relaxed);
      s.fast_hits.fetch_add(1, std::memory_order_relaxed);
      obs::registry().counter(kFastHits).add();
      obs::registry().counter(kHits).add();
      note_access(s, si);
      return FastPin(&slot,
                     std::span<const std::byte>(data, chunk_size()));
    }
  }
  return std::nullopt;
}

bool ChunkCache::try_read_fast(std::uint64_t address, std::uint64_t offset,
                               std::span<std::byte> out) {
  std::optional<FastPin> pin = try_pin_fast(address);
  if (!pin.has_value()) return false;
  std::memcpy(out.data(), pin->bytes().data() + offset, out.size());
  return true;
}

void ChunkCache::queue_write_locked(Shard& s, std::uint64_t address,
                                    std::unique_ptr<std::byte[]> data,
                                    std::vector<std::uint64_t>& write_submits) {
  auto [it, fresh] = s.pending_writes.try_emplace(address);
  it->second.data = std::shared_ptr<std::byte[]>(data.release());
  ++it->second.seq;
  ++s.stats.deferred_writebacks;
  obs::registry().counter(kDeferredWb).add();
  // One job per pending address: a replacement just swaps the buffer and
  // the existing job re-writes until seq is stable.
  if (fresh) write_submits.push_back(address);
}

// Body suppression (docs/STATIC_ANALYSIS.md): the synchronous write-back
// branch releases the caller's shard lock through the MutexLock&
// parameter, which the analysis cannot track across a function boundary.
// The DRX_REQUIRES(s.mu) contract on the declaration still checks every
// call site; s.mu is held on entry and on exit.
Status ChunkCache::evict_one_locked(Shard& s, util::MutexLock& lock,
                                    std::vector<std::uint64_t>& write_submits)
    DRX_NO_THREAD_SAFETY_ANALYSIS {
  if (s.lru.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "all cache frames are pinned");
  }
  const std::uint64_t victim = s.lru.back();
  s.lru.pop_back();
  auto it = s.frames.find(victim);
  DRX_CHECK(it != s.frames.end());
  // Withdraw from the fast-read table first: after the erase below the
  // buffer is recycled or handed to write-behind, and a lock-free reader
  // must not still be copying out of it.
  unpublish_locked(s, victim, it->second);
  Frame frame = std::move(it->second);
  s.frames.erase(it);
  ++s.stats.evictions;
  obs::registry().counter(kEvictions).add();
  if (frame.prefetched) {
    ++s.stats.prefetch_wasted;
    obs::registry().counter(kPrefWasted).add();
  }
  if (!frame.dirty) {
    recycle_buffer_locked(s, std::move(frame.data));
    return Status::ok();
  }

  if (async()) {
    // Write-behind: hand the buffer to the pool instead of blocking.
    queue_write_locked(s, victim, std::move(frame.data), write_submits);
    return Status::ok();
  }
  // Synchronous legacy path: write back before the eviction completes.
  // The frame was erased from s.frames above, so this thread owns its
  // buffer exclusively across the unlocked write.
  lock.unlock();
  std::vector<std::byte> scratch;
  const DrxFile::EncodedChunk enc = file_->encode_chunk(
      std::span<const std::byte>(frame.data.get(), chunk_size()), scratch);
  Status st;
  {
    util::MutexLock io(io_mu_);
    st = file_->write_chunk_encoded(victim, enc);
  }
  lock.lock();
  recycle_buffer_locked(s, std::move(frame.data));
  ++s.stats.writebacks;
  obs::registry().counter(kWritebacks).add();
  if (!st.is_ok()) record_error(st, /*surfaced=*/true);
  return st;
}

bool ChunkCache::borrow_capacity(std::size_t home_index) {
  for (std::size_t step = 1; step < shard_count_; ++step) {
    const std::size_t donor_index = (home_index + step) & shard_mask_;
    ShardPairLock pair(*this, home_index, donor_index);
    Shard& home = shards_[home_index];
    Shard& donor = shards_[donor_index];
    home.mu.assert_held();
    donor.mu.assert_held();
    if (donor.capacity <= 1) continue;  // never strand a shard frameless
    // A donor with headroom (or at least an evictable frame) can afford
    // to shrink; one at capacity with everything pinned cannot.
    if (donor.frames.size() < donor.capacity || !donor.lru.empty()) {
      --donor.capacity;
      ++home.capacity;
      ++home.stats.capacity_borrows;
      obs::registry().counter(kCapacityBorrows).add();
      // Move a recycled buffer along with the capacity when one is spare,
      // so the grown shard's next fault does not allocate under its lock.
      if (!donor.free_buffers.empty() &&
          home.free_buffers.size() < home.capacity) {
        home.free_buffers.push_back(std::move(donor.free_buffers.back()));
        donor.free_buffers.pop_back();
      }
      return true;
    }
  }
  return false;
}

bool ChunkCache::should_bypass_locked(Shard& s, std::uint64_t address,
                                      bool write) {
  // Resident (or in-flight) frames and queued write-behind buffers hold
  // the newest bytes — the pin path must serve them.
  if (s.frames.count(address) != 0 || s.pending_writes.count(address) != 0) {
    return false;
  }
  const io::CacheAdmit mode = io::cache_admit();
  if (mode == io::CacheAdmit::kAlways) return false;
  if (mode == io::CacheAdmit::kNever) return true;
  // auto: an async cache must admit writes — a bypass write racing an
  // in-flight speculative load of the same chunk would be clobbered when
  // that (stale) frame is later written back.
  if (async() && write) return false;
  // The element-scan detector is global (consecutive addresses hash to
  // different shards); seq_mu_ is a leaf under the shard lock.
  std::uint64_t prev = kNoAddress;
  {
    util::MutexLock seq(seq_mu_);
    prev = admit_last_miss_;
    admit_last_miss_ = address;
  }
  if (prev != kNoAddress && (address == prev || address == prev + 1)) {
    // Back-to-back misses on the same chunk (a hot element loop) or on
    // consecutive addresses (a sequential scan): admit the streaming run.
    return false;
  }
  std::uint64_t& slot = s.ghost[address & (s.ghost.size() - 1)];
  if (slot == address) {
    // Ghost re-touch promotes READ misses only: a read fault is one PFS
    // request either way and later hits on the resident chunk are free.
    // Promoting a write miss instead costs a fault read plus an eventual
    // dirty writeback — two requests where the bypass pays exactly the
    // one raw access would. The write still refreshes the probation slot
    // so a following read of the same chunk promotes.
    if (!write) {
      ++s.stats.admit_promotions;
      obs::registry().counter(kAdmitPromotions).add();
      return false;  // re-touched while on probation: demonstrated reuse
    }
    return true;
  }
  slot = address;
  return true;
}

Result<bool> ChunkCache::read_element_bypassed(std::uint64_t address,
                                               std::uint64_t offset,
                                               std::span<std::byte> out) {
  // Sub-chunk byte offsets have no storage address once chunks are
  // encoded: compressed arrays always go through whole-chunk frames.
  if (file_->compressed()) return false;
  const std::size_t si = shard_index(address);
  Shard& s = shards_[si];
  {
    util::MutexLock lock(s.mu);
    if (!should_bypass_locked(s, address, /*write=*/false)) return false;
    ++s.stats.admit_bypasses;
    obs::registry().counter(kAdmitBypasses).add();
  }
  note_access(s, si);
  const std::uint64_t base = checked_mul(address, file_->chunk_bytes());
  obs::StageTimer io_timer(obs::Stage::kIoService);
  util::MutexLock io(io_mu_);
  DRX_RETURN_IF_ERROR(
      file_->data_storage().read_at(checked_add(base, offset), out));
  return true;
}

Result<bool> ChunkCache::write_element_bypassed(
    std::uint64_t address, std::uint64_t offset,
    std::span<const std::byte> value) {
  if (file_->compressed()) return false;  // see read_element_bypassed
  const std::size_t si = shard_index(address);
  Shard& s = shards_[si];
  {
    util::MutexLock lock(s.mu);
    if (!should_bypass_locked(s, address, /*write=*/true)) return false;
    ++s.stats.admit_bypasses;
    obs::registry().counter(kAdmitBypasses).add();
  }
  note_access(s, si);
  const std::uint64_t base = checked_mul(address, file_->chunk_bytes());
  obs::StageTimer io_timer(obs::Stage::kIoService);
  util::MutexLock io(io_mu_);
  DRX_RETURN_IF_ERROR(
      file_->data_storage().write_at(checked_add(base, offset), value));
  return true;
}

void ChunkCache::submit_writes(const std::vector<std::uint64_t>& addresses) {
  for (const std::uint64_t address : addresses) {
    pool_->submit(obs::current_op(),
                  [this, address] { return run_write_job(address); });
  }
}

Result<std::span<std::byte>> ChunkCache::pin(std::uint64_t address,
                                             bool writable) {
  const std::size_t cb = chunk_size();
  const std::size_t si = shard_index(address);
  Shard& s = shards_[si];
  note_access(s, si);
  obs::StageTimer lock_wait(obs::Stage::kLockWait);
  util::MutexLock lock(s.mu);
  lock_wait.stop();
  int borrows = 0;
restart:
  auto it = s.frames.find(address);
  if (it != s.frames.end() && (it->second.loading || it->second.flushing)) {
    // A speculative fault for this chunk is in flight (or flush owns the
    // buffer for a write-back): wait rather than touching the buffer.
    ++s.stats.prefetch_waits;
    obs::registry().counter(kPrefWaits).add();
    obs::ScopedTimer wait_timer(kPrefWaitUs);
    // Waiting for someone else's fill of this chunk is cache-fault time
    // from the op's perspective.
    obs::StageTimer fault_wait(obs::Stage::kCacheFault);
    do {
      s.cv.wait(lock);
      it = s.frames.find(address);
    } while (it != s.frames.end() &&
             (it->second.loading || it->second.flushing));
  }
  if (it != s.frames.end()) {
    Frame& frame = it->second;
    ++s.stats.hits;
    obs::registry().counter(kHits).add();
    if (frame.prefetched) {
      frame.prefetched = false;
      ++s.stats.prefetch_useful;
      obs::registry().counter(kPrefUseful).add();
    }
    if (frame.in_lru) {
      s.lru.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pins;
    if (writable) {
      ++frame.write_pins;
      // The caller will store through the span with no lock held; drain
      // lock-free readers first so those stores never race a fast memcpy.
      unpublish_locked(s, address, frame);
    } else {
      maybe_publish_locked(s, address, frame);
    }
    return std::span<std::byte>(frame.data.get(), cb);
  }

  ++s.stats.misses;
  obs::registry().counter(kMisses).add();
  obs::profile_chunk(obs::ChunkOp::kCacheMiss, address, 0);

  // Sequential-scan detector (async mode only): consecutive miss
  // addresses accumulate a run; once it is long enough, read ahead.
  std::uint64_t readahead_want = 0;
  if (async() && prefetch_depth_ > 0) {
    util::MutexLock seq(seq_mu_);
    seq_run_ = (last_miss_ != kNoAddress && address == last_miss_ + 1)
                   ? seq_run_ + 1
                   : 1;
    last_miss_ = address;
    if (seq_run_ >= kSequentialThreshold) readahead_want = prefetch_depth_;
  }

  obs::ScopedSpan fault_span("core.cache_fault", "core", file_->chunk_bytes());
  // Fault handling (eviction, frame reservation, readahead setup) is
  // cache-fault time; stopped before the storage read below so the I/O
  // itself attributes to Stage::kIoService, not here.
  obs::StageTimer fault_timer(obs::Stage::kCacheFault);
  std::vector<std::uint64_t> write_submits;
  while (s.frames.size() >= s.capacity) {
    const Status ev = evict_one_locked(s, lock, write_submits);
    if (!ev.is_ok()) {
      // Every frame in this shard is pinned. Borrow a frame of capacity
      // from a sibling with slack instead of failing the pin (bounded
      // retries: concurrent pinners may consume what we borrow).
      if (shard_count_ > 1 && borrows < 8) {
        ++borrows;
        lock.unlock();
        if (!write_submits.empty()) submit_writes(write_submits);
        const bool borrowed = borrow_capacity(si);
        lock.lock();
        if (borrowed) goto restart;
      }
      return ev;
    }
    // The synchronous eviction path drops the lock to write; another
    // thread may have faulted our chunk meanwhile.
    if (!async() && s.frames.count(address) != 0) goto restart;
  }

  // Miss served from the write-behind queue: the newest bytes for this
  // chunk sit in a queued (not yet completed) write; copying them is both
  // correct and cheaper than re-reading the file.
  if (auto pw = s.pending_writes.find(address); pw != s.pending_writes.end()) {
    Frame frame;
    frame.data = take_buffer_locked(s);
    std::memcpy(frame.data.get(), pw->second.data.get(), cb);
    frame.pins = 1;
    frame.write_pins = writable ? 1 : 0;
    frame.dirty = true;  // storage still holds stale bytes for this chunk
    const auto [pos, inserted] = s.frames.emplace(address, std::move(frame));
    DRX_CHECK(inserted);
    ++s.stats.write_queue_hits;
    obs::registry().counter(kWriteQueueHits).add();
    std::byte* buffer = pos->second.data.get();
    if (!write_submits.empty()) {
      lock.unlock();
      submit_writes(write_submits);
    }
    return std::span<std::byte>(buffer, cb);
  }

  // Reserve the frame (loading, pinned) so concurrent pins wait instead
  // of double-faulting, then do the read outside the lock.
  std::byte* buffer = nullptr;
  {
    Frame frame;
    frame.data = take_buffer_locked(s);
    frame.pins = 1;
    frame.write_pins = writable ? 1 : 0;
    frame.loading = true;
    buffer = frame.data.get();
    const auto [pos, inserted] = s.frames.emplace(address, std::move(frame));
    DRX_CHECK(inserted);
  }
  lock.unlock();

  if (!write_submits.empty()) submit_writes(write_submits);
  if (readahead_want > 0) {
    // Reserving read-ahead frames locks other shards, so it happens only
    // after this shard's lock is dropped (one shard lock at a time).
    const std::uint64_t first = address + 1;
    const std::uint64_t run = reserve_readahead(first, readahead_want);
    if (run > 0) {
      pool_->submit(
          obs::current_op(),
          [this, first, run] { return run_prefetch_job(first, run); },
          nullptr, io::AsyncIoPool::JobClass::kBackground);
    }
  }

  fault_timer.stop();
  Status st;
  if (file_->compressed()) {
    // Split fault: fetch the stored bytes under the io mutex, decode
    // outside it — codec work must never serialize concurrent I/O. The
    // reserved frame (loading=true) gives this thread exclusive
    // ownership of `buffer`, so decoding into it lock-free is safe.
    std::vector<std::byte> stored;
    DrxFile::EncodedChunk enc;
    {
      util::MutexLock io(io_mu_);
      auto r = file_->read_chunk_stored(address, stored);
      if (r.is_ok()) {
        enc = r.value();
      } else {
        st = r.status();
      }
    }
    if (st.is_ok()) {
      st = file_->decode_chunk(enc.codec, enc.bytes,
                               std::span<std::byte>(buffer, cb));
    }
  } else {
    util::MutexLock io(io_mu_);
    st = file_->read_chunk(address, std::span<std::byte>(buffer, cb));
  }

  lock.lock();
  auto pos = s.frames.find(address);
  DRX_CHECK(pos != s.frames.end() && pos->second.loading);
  if (!st.is_ok()) {
    recycle_buffer_locked(s, std::move(pos->second.data));
    s.frames.erase(pos);
    lock.unlock();
    s.cv.notify_all();
    return st;
  }
  pos->second.loading = false;
  if (!writable) maybe_publish_locked(s, address, pos->second);
  lock.unlock();
  s.cv.notify_all();
  return std::span<std::byte>(buffer, cb);
}

void ChunkCache::unpin(std::uint64_t address, bool dirty, bool writable) {
  Shard& s = shard_of(address);
  obs::StageTimer lock_wait(obs::Stage::kLockWait);
  util::MutexLock lock(s.mu);
  lock_wait.stop();
  auto it = s.frames.find(address);
  DRX_CHECK_MSG(it != s.frames.end(), "unpin of non-resident chunk");
  Frame& frame = it->second;
  DRX_CHECK_MSG(frame.pins > 0, "unpin without matching pin");
  frame.dirty = frame.dirty || dirty;
  if (writable) {
    DRX_CHECK_MSG(frame.write_pins > 0, "writable unpin without writable pin");
    --frame.write_pins;
  }
  if (--frame.pins == 0) {
    s.lru.push_front(address);
    frame.lru_it = s.lru.begin();
    frame.in_lru = true;
    // flush_shard_async_locked parks until a dirty frame's last pin drops
    // so it can claim the buffer for an exclusive write-back.
    if (s.flush_waiters > 0) s.cv.notify_all();
  }
  // The last writer gone (and the frame settled) re-opens the fast path.
  maybe_publish_locked(s, address, frame);
}

std::uint64_t ChunkCache::reserve_readahead(std::uint64_t first,
                                            std::uint64_t want) {
  const std::uint64_t total = file_->metadata().mapping.total_chunks();
  // Never let speculation displace more than half the pool.
  const std::uint64_t cap =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(capacity_) / 2);
  want = std::min(want, cap);
  std::vector<std::uint64_t> write_submits;
  std::uint64_t participating = 0;  // shard bitmask; shard_count_ <= 64
  std::uint64_t run = 0;
  while (run < want) {
    const std::uint64_t address = first + run;
    if (address >= total) break;
    const std::size_t si = shard_index(address);
    Shard& s = shards_[si];
    util::MutexLock lock(s.mu);
    // Stop at resident frames (cached or in flight) and at queued writes:
    // the newest bytes for a queued-write chunk are not on storage yet.
    if (s.frames.count(address) != 0 ||
        s.pending_writes.count(address) != 0) {
      break;
    }
    // Make room by evicting unpinned frames; their dirty write-backs are
    // deferred to the pool, so speculation never blocks on I/O here.
    while (s.frames.size() >= s.capacity && !s.lru.empty()) {
      DRX_IGNORE_STATUS(evict_one_locked(s, lock, write_submits),
                        "speculative fill: write-back errors are recorded "
                        "by record_error and surface on flush()");
    }
    if (s.frames.size() >= s.capacity) break;
    Frame frame;
    frame.data = take_buffer_locked(s);
    frame.loading = true;
    frame.prefetched = true;
    const auto [pos, inserted] = s.frames.emplace(address, std::move(frame));
    DRX_CHECK(inserted);
    // One in-flight load per shard per job: run_prefetch_job recomputes
    // the same bitmask from (first, run) to pair the decrement.
    if ((participating & (std::uint64_t{1} << si)) == 0) {
      participating |= std::uint64_t{1} << si;
      ++s.loads_inflight;
    }
    ++s.stats.prefetch_issued;
    obs::registry().counter(kPrefIssued).add();
    ++run;
  }
  if (!write_submits.empty()) submit_writes(write_submits);
  if (run > 0) {
    // Keep the detector's run alive across the hits the prefetch creates.
    util::MutexLock seq(seq_mu_);
    last_miss_ = first + run - 1;
  }
  return run;
}

void ChunkCache::prefetch(std::uint64_t first, std::uint64_t count) {
  if (!async() || count == 0) return;
  const std::uint64_t run = reserve_readahead(first, count);
  if (run > 0) {
    pool_->submit(
        obs::current_op(),
        [this, first, run] { return run_prefetch_job(first, run); }, nullptr,
        io::AsyncIoPool::JobClass::kBackground);
  }
}

Status ChunkCache::run_write_job(std::uint64_t address) {
  Shard& s = shard_of(address);
  const std::size_t cb = chunk_size();
  for (;;) {
    std::shared_ptr<std::byte[]> data;
    std::uint64_t seq = 0;
    {
      util::MutexLock lock(s.mu);
      auto it = s.pending_writes.find(address);
      DRX_CHECK(it != s.pending_writes.end());  // only this job erases it
      data = it->second.data;
      seq = it->second.seq;
    }
    // Encode with NO lock held: the pending-write entry's shared_ptr
    // keeps the buffer alive, a replacement bumps seq (observed below)
    // rather than mutating bytes in place, and concurrent writers on
    // other chunks keep streaming through io_mu_ while this worker
    // compresses — codec cost overlaps I/O instead of serializing it.
    std::vector<std::byte> scratch;
    const DrxFile::EncodedChunk enc = file_->encode_chunk(
        std::span<const std::byte>(data.get(), cb), scratch);
    Status st;
    {
      util::MutexLock io(io_mu_);
      st = file_->write_chunk_encoded(address, enc);
    }
    if (!st.is_ok()) {
      DRX_LOG(kError) << "deferred chunk write-back failed (address " << address
                      << "): " << st.to_string();
    }
    bool dump_flight = false;
    bool replaced = false;
    {
      util::MutexLock lock(s.mu);
      ++s.stats.writebacks;
      obs::registry().counter(kWritebacks).add();
      if (!st.is_ok()) {
        dump_flight = record_error(st, /*surfaced=*/false);
      }
      auto it = s.pending_writes.find(address);
      DRX_CHECK(it != s.pending_writes.end());
      if (it->second.seq != seq) {
        replaced = true;  // replaced mid-write: go again
      } else {
        s.pending_writes.erase(it);
      }
    }
    s.cv.notify_all();
    if (dump_flight && obs::flight_enabled()) {
      // First sticky deferred error: nobody may ever call flush() to see
      // it, so capture the causal context now, outside the cache lock.
      const Status ds = obs::dump_flight("deferred-io-error");
      if (!ds.is_ok()) {
        DRX_LOG(kError) << "flight dump failed: " << ds.to_string();
      }
    }
    if (replaced) continue;
    return st;
  }
}

Status ChunkCache::run_prefetch_job(std::uint64_t first, std::uint64_t count) {
  const std::size_t cb = chunk_size();
  const std::size_t total = checked_size(count) * cb;
  auto staging = std::make_unique<std::byte[]>(total);
  Status st;
  if (file_->compressed()) {
    // Fetch stored bytes under the io mutex, decompress into staging
    // outside it: frames are published already-decoded, so readers
    // never pay codec latency, and decode overlaps concurrent I/O.
    std::vector<std::byte> stored;
    std::vector<DrxFile::StoredRef> refs;
    {
      util::MutexLock io(io_mu_);
      st = file_->read_chunks_stored(first, count, stored, refs);
    }
    for (std::size_t i = 0; st.is_ok() && i < refs.size(); ++i) {
      st = file_->decode_chunk(
          refs[i].codec,
          std::span<const std::byte>(stored.data() + refs[i].offset,
                                     refs[i].size),
          std::span<std::byte>(staging.get() + i * cb, cb));
    }
  } else {
    util::MutexLock io(io_mu_);
    st = file_->read_chunks(first, count,
                            std::span<std::byte>(staging.get(), total));
  }
  std::uint64_t participating = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t address = first + i;
    const std::size_t si = shard_index(address);
    participating |= std::uint64_t{1} << si;
    Shard& s = shards_[si];
    util::MutexLock lock(s.mu);
    auto it = s.frames.find(address);
    if (it == s.frames.end() || !it->second.loading) continue;
    if (st.is_ok()) {
      std::memcpy(it->second.data.get(), staging.get() + i * cb, cb);
      it->second.loading = false;
    } else {
      // Drop the reservation; a waiting pin re-faults synchronously and
      // observes the error itself.
      recycle_buffer_locked(s, std::move(it->second.data));
      s.frames.erase(it);
    }
  }
  // Mirror of reserve_readahead's once-per-shard increment.
  for (std::size_t si = 0; si < shard_count_; ++si) {
    if ((participating & (std::uint64_t{1} << si)) == 0) continue;
    Shard& s = shards_[si];
    {
      util::MutexLock lock(s.mu);
      DRX_CHECK(s.loads_inflight > 0);
      --s.loads_inflight;
    }
    s.cv.notify_all();
  }
  return st;
}

Status ChunkCache::flush_shard_sync_locked(Shard& s, util::MutexLock& lock) {
  // Single-threaded legacy shape: write dirty frames in place. io_mu_ is
  // taken under the shard lock here, which is safe because no pool
  // workers exist.
  // drx-lint: allow(cache-lock-io) sync mode has no concurrency to stall
  (void)lock;
  for (auto& [address, frame] : s.frames) {
    if (!frame.dirty) continue;
    ++s.stats.writebacks;
    obs::registry().counter(kWritebacks).add();
    Status st;
    {
      util::MutexLock io(io_mu_);
      st = file_->write_chunk(
          address, std::span<const std::byte>(frame.data.get(), chunk_size()));
    }
    if (!st.is_ok()) {
      record_error(st, /*surfaced=*/true);
      return st;
    }
    frame.dirty = false;
  }
  return Status::ok();
}

// Body suppression (docs/STATIC_ANALYSIS.md): the write-back window
// releases the caller's shard lock through the MutexLock& parameter,
// which the analysis cannot track across a function boundary. The
// DRX_REQUIRES(s.mu) contract on the declaration still checks every call
// site; s.mu is held on entry and on exit.
Status ChunkCache::flush_shard_async_locked(Shard& s, util::MutexLock& lock)
    DRX_NO_THREAD_SAFETY_ANALYSIS {
  const std::size_t cb = chunk_size();
  for (;;) {
    auto it =
        std::find_if(s.frames.begin(), s.frames.end(), [](const auto& kv) {
          return kv.second.dirty && !kv.second.loading;
        });
    if (it == s.frames.end()) break;
    const std::uint64_t address = it->first;
    Frame& frame = it->second;  // node-stable; pinned below, so not erased
    if (frame.pins > 0) {
      // A pinned writer may be storing into frame.data right now with no
      // lock held (pin() hands out the raw span); reading the buffer for
      // the storage write would race with those stores. Park until the
      // last pin drops, then rescan — the unpin that releases it marks
      // dirty first, so the frame is still eligible.
      ++s.flush_waiters;
      s.cv.wait(lock, [&s, address] {
        s.mu.assert_held();
        const auto f = s.frames.find(address);
        return f == s.frames.end() || f->second.pins == 0;
      });
      --s.flush_waiters;
      continue;
    }
    frame.dirty = false;    // claimed; a later set re-marks it
    frame.flushing = true;  // new pins wait instead of touching the buffer
    ++frame.pins;           // holds the frame across the unlocked write
    if (frame.in_lru) {
      s.lru.erase(frame.lru_it);
      frame.in_lru = false;
    }
    // With zero foreign pins and `flushing` blocking new ones, this
    // thread owns frame.data for WRITING across the unlocked window; the
    // storage write only READS the buffer, so the frame can stay
    // published — concurrent fast pins read bytes the write-back is
    // persisting, which is exactly the newest data.
    lock.unlock();
    // Shard lock dropped, io mutex not yet taken: encode overlaps other
    // workers' storage traffic (and never blocks readers of this shard).
    std::vector<std::byte> scratch;
    const DrxFile::EncodedChunk enc = file_->encode_chunk(
        std::span<const std::byte>(frame.data.get(), cb), scratch);
    Status st;
    {
      util::MutexLock io(io_mu_);
      st = file_->write_chunk_encoded(address, enc);
    }
    lock.lock();
    ++s.stats.writebacks;
    obs::registry().counter(kWritebacks).add();
    frame.flushing = false;
    if (--frame.pins == 0) {
      s.lru.push_front(address);
      frame.lru_it = s.lru.begin();
      frame.in_lru = true;
    }
    maybe_publish_locked(s, address, frame);
    s.cv.notify_all();  // wake pins parked on the flushing frame
    if (!st.is_ok()) {
      frame.dirty = true;
      record_error(st, /*surfaced=*/true);
      return st;
    }
  }
  return Status::ok();
}

Status ChunkCache::flush() {
  Status direct;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& s = shards_[i];
    util::MutexLock lock(s.mu);
    if (async()) {
      // Barrier: drain this shard's write-behind queue and in-flight
      // speculative loads before claiming dirty frames.
      s.cv.wait(lock, [&s] {
        s.mu.assert_held();
        return s.pending_writes.empty() && s.loads_inflight == 0;
      });
    }
    // drx-verify: allow(blocking-under-lock) sync mode is single-threaded
    // by construction — no pool workers exist to stall on the held shard
    // lock (see flush_shard_sync_locked).
    const Status st = async() ? flush_shard_async_locked(s, lock)
                              : flush_shard_sync_locked(s, lock);
    if (direct.is_ok() && !st.is_ok()) direct = st;
  }
  // A deferred write-back error that no caller has seen yet outranks a
  // direct failure from this flush: it happened first.
  const Status surfaced = take_unsurfaced_error();
  return surfaced.is_ok() ? direct : surfaced;
}

Status ChunkCache::invalidate() {
  DRX_RETURN_IF_ERROR(flush());
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& s = shards_[i];
    util::MutexLock lock(s.mu);
    for (auto it = s.frames.begin(); it != s.frames.end();) {
      if (it->second.pins == 0 && !it->second.loading) {
        unpublish_locked(s, it->first, it->second);
        if (it->second.in_lru) s.lru.erase(it->second.lru_it);
        it = s.frames.erase(it);
      } else {
        ++it;
      }
    }
    // Invalidation is the cold-cache tool: release the recycled buffers
    // too so a subsequent run starts from genuinely empty memory.
    s.free_buffers.clear();
  }
  return Status::ok();
}

Status ChunkCache::last_error() const {
  util::MutexLock lock(error_mu_);
  return last_error_;
}

ChunkCache::Stats ChunkCache::stats() const {
  Stats total;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& s = shards_[i];
    const std::uint64_t fast = s.fast_hits.load(std::memory_order_relaxed);
    util::MutexLock lock(s.mu);
    // Fast-path hits fold into `hits` (they ARE hits) and are also
    // reported separately so benches can see the mutex-bypass rate.
    total.hits += s.stats.hits + fast;
    total.fast_hits += fast;
    total.misses += s.stats.misses;
    total.evictions += s.stats.evictions;
    total.writebacks += s.stats.writebacks;
    total.deferred_writebacks += s.stats.deferred_writebacks;
    total.write_queue_hits += s.stats.write_queue_hits;
    total.prefetch_issued += s.stats.prefetch_issued;
    total.prefetch_useful += s.stats.prefetch_useful;
    total.prefetch_wasted += s.stats.prefetch_wasted;
    total.prefetch_waits += s.stats.prefetch_waits;
    total.admit_bypasses += s.stats.admit_bypasses;
    total.admit_promotions += s.stats.admit_promotions;
    total.capacity_borrows += s.stats.capacity_borrows;
  }
  return total;
}

std::size_t ChunkCache::resident() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& s = shards_[i];
    util::MutexLock lock(s.mu);
    n += s.frames.size();
  }
  return n;
}

std::vector<std::uint64_t> ChunkCache::shard_accesses() const {
  std::vector<std::uint64_t> out;
  out.reserve(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    out.push_back(shards_[i].accesses.load(std::memory_order_relaxed));
  }
  return out;
}

Status CachedDrxFile::read_box(const Box& box, MemoryOrder order,
                               std::span<std::byte> out) {
  obs::OpScope op("op.cached_read_box");
  DRX_CHECK(out.size() == checked_mul(box.volume(), file_->element_bytes()));
  const Box full{Index(file_->rank(), 0),
                 Index(file_->bounds().begin(), file_->bounds().end())};
  const Box clipped = box.intersect(full);
  if (clipped.empty()) return Status::ok();
  // Pass 1: scatter every chunk the lock-free table serves — a box over
  // fully resident, published chunks completes without touching any
  // mutex. The rest are collected for the slow pass.
  std::vector<Index> missed;
  for_each_index(space_.covering_chunks(clipped), [&](const Index& c) {
    const Box clip = space_.chunk_box(c).intersect(clipped);
    if (clip.empty()) return;
    const std::uint64_t q = file_->chunk_address(c);
    if (std::optional<ChunkCache::FastPin> fast = cache_.try_pin_fast(q)) {
      file_->scatter_chunk(fast->bytes(), clip, box, order, out);
      return;
    }
    missed.push_back(c);
  });
  if (missed.empty()) return Status::ok();
  // Announce the remainder before the first pin: an async cache turns
  // this into coalesced background faults the pins below then hit.
  file_->prefetch_box(clipped);
  for (const Index& c : missed) {
    const Box clip = space_.chunk_box(c).intersect(clipped);
    const std::uint64_t q = file_->chunk_address(c);
    DRX_ASSIGN_OR_RETURN(std::span<std::byte> chunk,
                         cache_.pin(q, /*writable=*/false));
    file_->scatter_chunk(chunk, clip, box, order, out);
    cache_.unpin(q, /*dirty=*/false, /*writable=*/false);
  }
  return Status::ok();
}

Status CachedDrxFile::write_box(const Box& box, MemoryOrder order,
                                std::span<const std::byte> in) {
  obs::OpScope op("op.cached_write_box");
  DRX_CHECK(in.size() == checked_mul(box.volume(), file_->element_bytes()));
  const Box full{Index(file_->rank(), 0),
                 Index(file_->bounds().begin(), file_->bounds().end())};
  const Box clipped = box.intersect(full);
  if (clipped.empty()) return Status::ok();
  // Partially covered chunks are read-modify-write: the pin faults the
  // chunk in, gather overwrites the clipped region, and the dirty unpin
  // schedules write-back.
  file_->prefetch_box(clipped);
  Status result;
  for_each_index(space_.covering_chunks(clipped), [&](const Index& c) {
    if (!result.is_ok()) return;
    const Box clip = space_.chunk_box(c).intersect(clipped);
    if (clip.empty()) return;
    const std::uint64_t q = file_->chunk_address(c);
    auto pinned = cache_.pin(q, /*writable=*/true);
    if (!pinned.is_ok()) {
      result = pinned.status();
      return;
    }
    file_->gather_chunk(pinned.value(), clip, box, order, in);
    cache_.unpin(q, /*dirty=*/true, /*writable=*/true);
  });
  return result;
}

}  // namespace drx::core
