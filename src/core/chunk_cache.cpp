#include "core/chunk_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drx::core {

namespace {
// Cache counters mirror ChunkCache::Stats into the obs registry so cache
// behaviour lands in cross-rank aggregates and bench JSON automatically.
const obs::MetricId kHits = obs::counter_id("core.cache.hits");
const obs::MetricId kMisses = obs::counter_id("core.cache.misses");
const obs::MetricId kEvictions = obs::counter_id("core.cache.evictions");
const obs::MetricId kWritebacks = obs::counter_id("core.cache.writebacks");
}  // namespace

Result<std::span<std::byte>> ChunkCache::pin(std::uint64_t address) {
  auto it = frames_.find(address);
  if (it != frames_.end()) {
    ++stats_.hits;
    obs::registry().counter(kHits).add();
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pins;
    return std::span<std::byte>(frame.data.get(),
                                checked_size(file_->chunk_bytes()));
  }

  ++stats_.misses;
  obs::registry().counter(kMisses).add();
  obs::ScopedSpan fault_span("core.cache_fault", "core", file_->chunk_bytes());
  while (frames_.size() >= capacity_) {
    DRX_RETURN_IF_ERROR(evict_one());
  }

  Frame frame;
  frame.data =
      std::make_unique<std::byte[]>(checked_size(file_->chunk_bytes()));
  DRX_RETURN_IF_ERROR(file_->read_chunk(
      address, std::span<std::byte>(frame.data.get(),
                                    checked_size(file_->chunk_bytes()))));
  frame.pins = 1;
  auto [pos, inserted] = frames_.emplace(address, std::move(frame));
  DRX_CHECK(inserted);
  return std::span<std::byte>(pos->second.data.get(),
                              checked_size(file_->chunk_bytes()));
}

void ChunkCache::unpin(std::uint64_t address, bool dirty) {
  auto it = frames_.find(address);
  DRX_CHECK_MSG(it != frames_.end(), "unpin of non-resident chunk");
  Frame& frame = it->second;
  DRX_CHECK_MSG(frame.pins > 0, "unpin without matching pin");
  frame.dirty = frame.dirty || dirty;
  if (--frame.pins == 0) {
    lru_.push_front(address);
    frame.lru_it = lru_.begin();
    frame.in_lru = true;
  }
}

Status ChunkCache::evict_one() {
  if (lru_.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "all cache frames are pinned");
  }
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  DRX_CHECK(it != frames_.end());
  if (it->second.dirty) {
    ++stats_.writebacks;
    obs::registry().counter(kWritebacks).add();
    DRX_RETURN_IF_ERROR(file_->write_chunk(
        victim,
        std::span<const std::byte>(it->second.data.get(),
                                   checked_size(file_->chunk_bytes()))));
  }
  frames_.erase(it);
  ++stats_.evictions;
  obs::registry().counter(kEvictions).add();
  return Status::ok();
}

Status ChunkCache::flush() {
  for (auto& [address, frame] : frames_) {
    if (frame.dirty) {
      ++stats_.writebacks;
      obs::registry().counter(kWritebacks).add();
      DRX_RETURN_IF_ERROR(file_->write_chunk(
          address,
          std::span<const std::byte>(frame.data.get(),
                                     checked_size(file_->chunk_bytes()))));
      frame.dirty = false;
    }
  }
  return Status::ok();
}

Status ChunkCache::invalidate() {
  DRX_RETURN_IF_ERROR(flush());
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pins == 0) {
      if (it->second.in_lru) lru_.erase(it->second.lru_it);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::ok();
}

}  // namespace drx::core
