#include "core/chunk_cache.hpp"

#include <algorithm>
#include <cstring>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace drx::core {

namespace {
// Cache counters mirror ChunkCache::Stats into the obs registry so cache
// behaviour lands in cross-rank aggregates and bench JSON automatically.
const obs::MetricId kHits = obs::counter_id("core.cache.hits");
const obs::MetricId kMisses = obs::counter_id("core.cache.misses");
const obs::MetricId kEvictions = obs::counter_id("core.cache.evictions");
const obs::MetricId kWritebacks = obs::counter_id("core.cache.writebacks");
const obs::MetricId kDeferredWb =
    obs::counter_id("core.cache.deferred_writebacks");
const obs::MetricId kWriteQueueHits =
    obs::counter_id("core.cache.write_queue_hits");
const obs::MetricId kPrefIssued = obs::counter_id("core.cache.prefetch_issued");
const obs::MetricId kPrefUseful = obs::counter_id("core.cache.prefetch_useful");
const obs::MetricId kPrefWasted = obs::counter_id("core.cache.prefetch_wasted");
const obs::MetricId kPrefWaits = obs::counter_id("core.cache.prefetch_waits");
const obs::MetricId kPrefWaitUs =
    obs::histogram_id("core.cache.prefetch_wait_us");
const obs::MetricId kAdmitBypasses =
    obs::counter_id("core.cache.admit_bypasses");
const obs::MetricId kAdmitPromotions =
    obs::counter_id("core.cache.admit_promotions");
}  // namespace

ChunkCache::ChunkCache(DrxFile& file, std::size_t capacity,
                       const AsyncOptions& async)
    : file_(&file), capacity_(capacity) {
  DRX_CHECK(capacity >= 1);
  // Ghost filter: power-of-two table of recently bypassed addresses,
  // sized a few multiples of capacity so probation outlives residency
  // (bounded at 4096 slots of 8 bytes — no chunk buffers, just tags).
  std::size_t ghost_slots = 64;
  while (ghost_slots < 4 * capacity && ghost_slots < 4096) ghost_slots <<= 1;
  ghost_.assign(ghost_slots, kNoAddress);
  if (async.io_threads > 0) {
    io::AsyncIoPool::Options pool_options;
    pool_options.threads = async.io_threads;
    pool_options.queue_capacity = std::max<std::size_t>(16, 2 * capacity);
    pool_ = std::make_unique<io::AsyncIoPool>(pool_options);
    prefetch_depth_ = async.prefetch_depth;
    // Become the file's prefetch sink so higher-layer hints
    // (DrxFile::prefetch_box) turn into background faults.
    if (file_->prefetch_sink() == nullptr) file_->set_prefetch_sink(this);
  }
}

ChunkCache::~ChunkCache() {
  const Status st = flush();
  if (!st.is_ok()) {
    // The destructor cannot return the failure; a silent drop here would
    // lose a deferred write error for good, so it goes to the error log.
    DRX_LOG(kError) << "ChunkCache destroyed with unflushed write-back error: "
                    << st.to_string();
  }
  if (file_->prefetch_sink() == this) file_->set_prefetch_sink(nullptr);
  pool_.reset();  // queue is empty after flush(); joins the workers
}

std::size_t ChunkCache::chunk_size() const {
  return checked_size(file_->chunk_bytes());
}

bool ChunkCache::record_error_locked(const Status& status, bool surfaced) {
  if (last_error_.is_ok()) {
    last_error_ = status;
    error_unsurfaced_ = !surfaced;
    return !surfaced;
  }
  return false;
}

std::unique_ptr<std::byte[]> ChunkCache::take_buffer_locked() {
  if (!free_buffers_.empty()) {
    std::unique_ptr<std::byte[]> buffer = std::move(free_buffers_.back());
    free_buffers_.pop_back();
    return buffer;
  }
  // Cold start only: steady state recycles eviction buffers, so the miss
  // path never allocates while holding the cache lock.
  // drx-lint: allow(cache-lock-alloc) cold-start fill; bounded by capacity_
  return std::make_unique<std::byte[]>(chunk_size());
}

void ChunkCache::recycle_buffer_locked(std::unique_ptr<std::byte[]> buffer) {
  if (free_buffers_.size() < capacity_) {
    free_buffers_.push_back(std::move(buffer));
  }
}

void ChunkCache::queue_write_locked(std::uint64_t address,
                                    std::unique_ptr<std::byte[]> data,
                                    std::vector<std::uint64_t>& write_submits) {
  auto [it, fresh] = pending_writes_.try_emplace(address);
  it->second.data = std::shared_ptr<std::byte[]>(data.release());
  ++it->second.seq;
  ++stats_.deferred_writebacks;
  obs::registry().counter(kDeferredWb).add();
  // One job per pending address: a replacement just swaps the buffer and
  // the existing job re-writes until seq is stable.
  if (fresh) write_submits.push_back(address);
}

// Body suppression (docs/STATIC_ANALYSIS.md): the synchronous write-back
// branch releases the caller's mu_ lock through the MutexLock& parameter,
// which the analysis cannot track across a function boundary. The
// DRX_REQUIRES(mu_) contract on the declaration still checks every call
// site; mu_ is held on entry and on exit.
Status ChunkCache::evict_one_locked(util::MutexLock& lock,
                                    std::vector<std::uint64_t>& write_submits)
    DRX_NO_THREAD_SAFETY_ANALYSIS {
  if (lru_.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "all cache frames are pinned");
  }
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  DRX_CHECK(it != frames_.end());
  Frame frame = std::move(it->second);
  frames_.erase(it);
  ++stats_.evictions;
  obs::registry().counter(kEvictions).add();
  if (frame.prefetched) {
    ++stats_.prefetch_wasted;
    obs::registry().counter(kPrefWasted).add();
  }
  if (!frame.dirty) {
    recycle_buffer_locked(std::move(frame.data));
    return Status::ok();
  }

  if (async()) {
    // Write-behind: hand the buffer to the pool instead of blocking.
    queue_write_locked(victim, std::move(frame.data), write_submits);
    return Status::ok();
  }
  // Synchronous legacy path: write back before the eviction completes.
  // The frame was erased from frames_ above, so this thread owns its
  // buffer exclusively across the unlocked write.
  lock.unlock();
  Status st;
  {
    util::MutexLock io(io_mu_);
    st = file_->write_chunk(
        victim, std::span<const std::byte>(frame.data.get(), chunk_size()));
  }
  lock.lock();
  recycle_buffer_locked(std::move(frame.data));
  ++stats_.writebacks;
  obs::registry().counter(kWritebacks).add();
  if (!st.is_ok()) record_error_locked(st, /*surfaced=*/true);
  return st;
}

std::uint64_t ChunkCache::reserve_readahead_locked(
    util::MutexLock& lock, std::uint64_t first, std::uint64_t want,
    std::vector<std::uint64_t>& write_submits) {
  const std::uint64_t total = file_->metadata().mapping.total_chunks();
  // Never let speculation displace more than half the pool.
  const std::uint64_t cap =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(capacity_) / 2);
  std::uint64_t run = 0;
  while (run < std::min(want, cap)) {
    const std::uint64_t address = first + run;
    // Stop at resident frames (cached or in flight) and at queued writes:
    // the newest bytes for a queued-write chunk are not on storage yet.
    if (address >= total || frames_.count(address) != 0 ||
        pending_writes_.count(address) != 0) {
      break;
    }
    ++run;
  }
  if (run == 0) return 0;
  // Make room by evicting unpinned frames; their dirty write-backs are
  // deferred to the pool, so speculation never blocks on I/O here.
  while (frames_.size() + checked_size(run) > capacity_ && !lru_.empty()) {
    (void)evict_one_locked(lock, write_submits);
  }
  if (frames_.size() >= capacity_) return 0;
  run = std::min<std::uint64_t>(run, capacity_ - frames_.size());

  for (std::uint64_t i = 0; i < run; ++i) {
    Frame frame;
    frame.data = take_buffer_locked();
    frame.loading = true;
    frame.prefetched = true;
    const auto [pos, inserted] = frames_.emplace(first + i, std::move(frame));
    DRX_CHECK(inserted);
  }
  ++loads_inflight_;
  stats_.prefetch_issued += run;
  obs::registry().counter(kPrefIssued).add(run);
  // Keep the detector's run alive across the hits the prefetch creates.
  last_miss_ = first + run - 1;
  return run;
}

bool ChunkCache::should_bypass_locked(std::uint64_t address, bool write) {
  // Resident (or in-flight) frames and queued write-behind buffers hold
  // the newest bytes — the pin path must serve them.
  if (frames_.count(address) != 0 || pending_writes_.count(address) != 0) {
    return false;
  }
  const io::CacheAdmit mode = io::cache_admit();
  if (mode == io::CacheAdmit::kAlways) return false;
  if (mode == io::CacheAdmit::kNever) return true;
  // auto: an async cache must admit writes — a bypass write racing an
  // in-flight speculative load of the same chunk would be clobbered when
  // that (stale) frame is later written back.
  if (async() && write) return false;
  const std::uint64_t prev = admit_last_miss_;
  admit_last_miss_ = address;
  if (prev != kNoAddress && (address == prev || address == prev + 1)) {
    // Back-to-back misses on the same chunk (a hot element loop) or on
    // consecutive addresses (a sequential scan): admit the streaming run.
    return false;
  }
  std::uint64_t& slot = ghost_[address & (ghost_.size() - 1)];
  if (slot == address) {
    // Ghost re-touch promotes READ misses only: a read fault is one PFS
    // request either way and later hits on the resident chunk are free.
    // Promoting a write miss instead costs a fault read plus an eventual
    // dirty writeback — two requests where the bypass pays exactly the
    // one raw access would. The write still refreshes the probation slot
    // so a following read of the same chunk promotes.
    if (!write) {
      ++stats_.admit_promotions;
      obs::registry().counter(kAdmitPromotions).add();
      return false;  // re-touched while on probation: demonstrated reuse
    }
    return true;
  }
  slot = address;
  return true;
}

Result<bool> ChunkCache::read_element_bypassed(std::uint64_t address,
                                               std::uint64_t offset,
                                               std::span<std::byte> out) {
  {
    util::MutexLock lock(mu_);
    if (!should_bypass_locked(address, /*write=*/false)) return false;
    ++stats_.admit_bypasses;
    obs::registry().counter(kAdmitBypasses).add();
  }
  const std::uint64_t base = checked_mul(address, file_->chunk_bytes());
  obs::StageTimer io_timer(obs::Stage::kIoService);
  util::MutexLock io(io_mu_);
  DRX_RETURN_IF_ERROR(
      file_->data_storage().read_at(checked_add(base, offset), out));
  return true;
}

Result<bool> ChunkCache::write_element_bypassed(
    std::uint64_t address, std::uint64_t offset,
    std::span<const std::byte> value) {
  {
    util::MutexLock lock(mu_);
    if (!should_bypass_locked(address, /*write=*/true)) return false;
    ++stats_.admit_bypasses;
    obs::registry().counter(kAdmitBypasses).add();
  }
  const std::uint64_t base = checked_mul(address, file_->chunk_bytes());
  obs::StageTimer io_timer(obs::Stage::kIoService);
  util::MutexLock io(io_mu_);
  DRX_RETURN_IF_ERROR(
      file_->data_storage().write_at(checked_add(base, offset), value));
  return true;
}

void ChunkCache::submit_writes(const std::vector<std::uint64_t>& addresses) {
  for (const std::uint64_t address : addresses) {
    pool_->submit(obs::current_op(),
                  [this, address] { return run_write_job(address); });
  }
}

Result<std::span<std::byte>> ChunkCache::pin(std::uint64_t address) {
  const std::size_t cb = chunk_size();
  obs::StageTimer lock_wait(obs::Stage::kLockWait);
  util::MutexLock lock(mu_);
  lock_wait.stop();
restart:
  auto it = frames_.find(address);
  if (it != frames_.end() && (it->second.loading || it->second.flushing)) {
    // A speculative fault for this chunk is in flight (or flush owns the
    // buffer for a write-back): wait rather than touching the buffer.
    ++stats_.prefetch_waits;
    obs::registry().counter(kPrefWaits).add();
    obs::ScopedTimer wait_timer(kPrefWaitUs);
    // Waiting for someone else's fill of this chunk is cache-fault time
    // from the op's perspective.
    obs::StageTimer fault_wait(obs::Stage::kCacheFault);
    do {
      cv_.wait(lock);
      it = frames_.find(address);
    } while (it != frames_.end() &&
             (it->second.loading || it->second.flushing));
  }
  if (it != frames_.end()) {
    Frame& frame = it->second;
    ++stats_.hits;
    obs::registry().counter(kHits).add();
    if (frame.prefetched) {
      frame.prefetched = false;
      ++stats_.prefetch_useful;
      obs::registry().counter(kPrefUseful).add();
    }
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pins;
    return std::span<std::byte>(frame.data.get(), cb);
  }

  ++stats_.misses;
  obs::registry().counter(kMisses).add();
  obs::profile_chunk(obs::ChunkOp::kCacheMiss, address, 0);

  // Sequential-scan detector (async mode only): consecutive miss
  // addresses accumulate a run; once it is long enough, read ahead.
  std::uint64_t readahead_want = 0;
  if (async() && prefetch_depth_ > 0) {
    seq_run_ = (last_miss_ != kNoAddress && address == last_miss_ + 1)
                   ? seq_run_ + 1
                   : 1;
    last_miss_ = address;
    if (seq_run_ >= kSequentialThreshold) readahead_want = prefetch_depth_;
  }

  obs::ScopedSpan fault_span("core.cache_fault", "core", file_->chunk_bytes());
  // Fault handling (eviction, frame reservation, readahead setup) is
  // cache-fault time; stopped before the storage read below so the I/O
  // itself attributes to Stage::kIoService, not here.
  obs::StageTimer fault_timer(obs::Stage::kCacheFault);
  std::vector<std::uint64_t> write_submits;
  while (frames_.size() >= capacity_) {
    DRX_RETURN_IF_ERROR(evict_one_locked(lock, write_submits));
    // The synchronous eviction path drops the lock to write; another
    // thread may have faulted our chunk meanwhile.
    if (!async() && frames_.count(address) != 0) goto restart;
  }

  // Miss served from the write-behind queue: the newest bytes for this
  // chunk sit in a queued (not yet completed) write; copying them is both
  // correct and cheaper than re-reading the file.
  if (auto pw = pending_writes_.find(address); pw != pending_writes_.end()) {
    Frame frame;
    frame.data = take_buffer_locked();
    std::memcpy(frame.data.get(), pw->second.data.get(), cb);
    frame.pins = 1;
    frame.dirty = true;  // storage still holds stale bytes for this chunk
    const auto [pos, inserted] = frames_.emplace(address, std::move(frame));
    DRX_CHECK(inserted);
    ++stats_.write_queue_hits;
    obs::registry().counter(kWriteQueueHits).add();
    std::byte* buffer = pos->second.data.get();
    if (!write_submits.empty()) {
      lock.unlock();
      submit_writes(write_submits);
    }
    return std::span<std::byte>(buffer, cb);
  }

  // Reserve the frame (loading, pinned) so concurrent pins wait instead
  // of double-faulting, then do the read outside the lock.
  std::byte* buffer = nullptr;
  {
    Frame frame;
    frame.data = take_buffer_locked();
    frame.pins = 1;
    frame.loading = true;
    buffer = frame.data.get();
    const auto [pos, inserted] = frames_.emplace(address, std::move(frame));
    DRX_CHECK(inserted);
  }
  std::uint64_t readahead_n = 0;
  if (readahead_want > 0) {
    readahead_n = reserve_readahead_locked(lock, address + 1, readahead_want,
                                           write_submits);
  }
  lock.unlock();

  if (!write_submits.empty()) submit_writes(write_submits);
  if (readahead_n > 0) {
    const std::uint64_t first = address + 1;
    const std::uint64_t count = readahead_n;
    pool_->submit(obs::current_op(), [this, first, count] {
      return run_prefetch_job(first, count);
    });
  }

  fault_timer.stop();
  Status st;
  {
    util::MutexLock io(io_mu_);
    st = file_->read_chunk(address, std::span<std::byte>(buffer, cb));
  }

  lock.lock();
  auto pos = frames_.find(address);
  DRX_CHECK(pos != frames_.end() && pos->second.loading);
  if (!st.is_ok()) {
    recycle_buffer_locked(std::move(pos->second.data));
    frames_.erase(pos);
    lock.unlock();
    cv_.notify_all();
    return st;
  }
  pos->second.loading = false;
  lock.unlock();
  cv_.notify_all();
  return std::span<std::byte>(buffer, cb);
}

void ChunkCache::unpin(std::uint64_t address, bool dirty) {
  obs::StageTimer lock_wait(obs::Stage::kLockWait);
  util::MutexLock lock(mu_);
  lock_wait.stop();
  auto it = frames_.find(address);
  DRX_CHECK_MSG(it != frames_.end(), "unpin of non-resident chunk");
  Frame& frame = it->second;
  DRX_CHECK_MSG(frame.pins > 0, "unpin without matching pin");
  frame.dirty = frame.dirty || dirty;
  if (--frame.pins == 0) {
    lru_.push_front(address);
    frame.lru_it = lru_.begin();
    frame.in_lru = true;
    // flush_async_locked parks until a dirty frame's last pin drops so it
    // can claim the buffer for an exclusive write-back.
    if (flush_waiters_ > 0) cv_.notify_all();
  }
}

void ChunkCache::prefetch(std::uint64_t first, std::uint64_t count) {
  if (!async() || count == 0) return;
  std::vector<std::uint64_t> write_submits;
  std::uint64_t run = 0;
  {
    util::MutexLock lock(mu_);
    run = reserve_readahead_locked(lock, first, count, write_submits);
  }
  if (!write_submits.empty()) submit_writes(write_submits);
  if (run > 0) {
    pool_->submit(obs::current_op(), [this, first, run] {
      return run_prefetch_job(first, run);
    });
  }
}

Status ChunkCache::run_write_job(std::uint64_t address) {
  const std::size_t cb = chunk_size();
  for (;;) {
    std::shared_ptr<std::byte[]> data;
    std::uint64_t seq = 0;
    {
      util::MutexLock lock(mu_);
      auto it = pending_writes_.find(address);
      DRX_CHECK(it != pending_writes_.end());  // only this job erases it
      data = it->second.data;
      seq = it->second.seq;
    }
    Status st;
    {
      util::MutexLock io(io_mu_);
      st = file_->write_chunk(address,
                              std::span<const std::byte>(data.get(), cb));
    }
    if (!st.is_ok()) {
      DRX_LOG(kError) << "deferred chunk write-back failed (address " << address
                      << "): " << st.to_string();
    }
    bool dump_flight = false;
    bool replaced = false;
    {
      util::MutexLock lock(mu_);
      ++stats_.writebacks;
      obs::registry().counter(kWritebacks).add();
      if (!st.is_ok()) {
        dump_flight = record_error_locked(st, /*surfaced=*/false);
      }
      auto it = pending_writes_.find(address);
      DRX_CHECK(it != pending_writes_.end());
      if (it->second.seq != seq) {
        replaced = true;  // replaced mid-write: go again
      } else {
        pending_writes_.erase(it);
      }
    }
    cv_.notify_all();
    if (dump_flight && obs::flight_enabled()) {
      // First sticky deferred error: nobody may ever call flush() to see
      // it, so capture the causal context now, outside the cache lock.
      const Status ds = obs::dump_flight("deferred-io-error");
      if (!ds.is_ok()) {
        DRX_LOG(kError) << "flight dump failed: " << ds.to_string();
      }
    }
    if (replaced) continue;
    return st;
  }
}

Status ChunkCache::run_prefetch_job(std::uint64_t first, std::uint64_t count) {
  const std::size_t cb = chunk_size();
  const std::size_t total = checked_size(count) * cb;
  auto staging = std::make_unique<std::byte[]>(total);
  Status st;
  {
    util::MutexLock io(io_mu_);
    st = file_->read_chunks(first, count,
                            std::span<std::byte>(staging.get(), total));
  }
  {
    util::MutexLock lock(mu_);
    for (std::uint64_t i = 0; i < count; ++i) {
      auto it = frames_.find(first + i);
      if (it == frames_.end() || !it->second.loading) continue;
      if (st.is_ok()) {
        std::memcpy(it->second.data.get(), staging.get() + i * cb, cb);
        it->second.loading = false;
      } else {
        // Drop the reservation; a waiting pin re-faults synchronously and
        // observes the error itself.
        recycle_buffer_locked(std::move(it->second.data));
        frames_.erase(it);
      }
    }
    DRX_CHECK(loads_inflight_ > 0);
    --loads_inflight_;
  }
  cv_.notify_all();
  return st;
}

Status ChunkCache::flush_sync_locked(util::MutexLock& lock, Status surfaced) {
  // Single-threaded legacy shape: write dirty frames in place. io_mu_ is
  // taken under mu_ here, which is safe because no pool workers exist.
  // drx-lint: allow(cache-lock-io) sync mode has no concurrency to stall
  (void)lock;
  for (auto& [address, frame] : frames_) {
    if (!frame.dirty) continue;
    ++stats_.writebacks;
    obs::registry().counter(kWritebacks).add();
    Status st;
    {
      util::MutexLock io(io_mu_);
      st = file_->write_chunk(
          address, std::span<const std::byte>(frame.data.get(), chunk_size()));
    }
    if (!st.is_ok()) {
      record_error_locked(st, /*surfaced=*/true);
      return surfaced.is_ok() ? st : surfaced;
    }
    frame.dirty = false;
  }
  return surfaced;
}

// Body suppression (docs/STATIC_ANALYSIS.md): the write-back window
// releases the caller's mu_ through the MutexLock& parameter, which the
// analysis cannot track across a function boundary. The DRX_REQUIRES(mu_)
// contract on the declaration still checks every call site; mu_ is held
// on entry and on exit.
Status ChunkCache::flush_async_locked(util::MutexLock& lock, Status surfaced)
    DRX_NO_THREAD_SAFETY_ANALYSIS {
  const std::size_t cb = chunk_size();
  for (;;) {
    auto it = std::find_if(frames_.begin(), frames_.end(), [](const auto& kv) {
      return kv.second.dirty && !kv.second.loading;
    });
    if (it == frames_.end()) break;
    const std::uint64_t address = it->first;
    Frame& frame = it->second;  // node-stable; pinned below, so not erased
    if (frame.pins > 0) {
      // A pinned writer may be storing into frame.data right now with no
      // lock held (pin() hands out the raw span); reading the buffer for
      // the storage write would race with those stores. Park until the
      // last pin drops, then rescan — the unpin that releases it marks
      // dirty first, so the frame is still eligible.
      ++flush_waiters_;
      cv_.wait(lock, [this, address] {
        mu_.assert_held();
        const auto f = frames_.find(address);
        return f == frames_.end() || f->second.pins == 0;
      });
      --flush_waiters_;
      continue;
    }
    frame.dirty = false;    // claimed; a later set re-marks it
    frame.flushing = true;  // new pins wait instead of touching the buffer
    ++frame.pins;           // holds the frame across the unlocked write
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    // With zero foreign pins and `flushing` blocking new ones, this
    // thread owns frame.data exclusively across the unlocked write.
    lock.unlock();
    Status st;
    {
      util::MutexLock io(io_mu_);
      st = file_->write_chunk(
          address, std::span<const std::byte>(frame.data.get(), cb));
    }
    lock.lock();
    ++stats_.writebacks;
    obs::registry().counter(kWritebacks).add();
    frame.flushing = false;
    if (--frame.pins == 0) {
      lru_.push_front(address);
      frame.lru_it = lru_.begin();
      frame.in_lru = true;
    }
    cv_.notify_all();  // wake pins parked on the flushing frame
    if (!st.is_ok()) {
      frame.dirty = true;
      record_error_locked(st, /*surfaced=*/true);
      return surfaced.is_ok() ? st : surfaced;
    }
  }
  return surfaced;
}

Status ChunkCache::flush() {
  util::MutexLock lock(mu_);
  if (async()) {
    // Barrier: drain write-behind and in-flight speculative loads.
    cv_.wait(lock, [this] {
      mu_.assert_held();
      return pending_writes_.empty() && loads_inflight_ == 0;
    });
  }
  Status surfaced;
  if (!last_error_.is_ok() && error_unsurfaced_) {
    error_unsurfaced_ = false;
    surfaced = last_error_;
  }
  return async() ? flush_async_locked(lock, std::move(surfaced))
                 : flush_sync_locked(lock, std::move(surfaced));
}

Status ChunkCache::invalidate() {
  DRX_RETURN_IF_ERROR(flush());
  util::MutexLock lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pins == 0 && !it->second.loading) {
      if (it->second.in_lru) lru_.erase(it->second.lru_it);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  // Invalidation is the cold-cache tool: release the recycled buffers too
  // so a subsequent run starts from genuinely empty memory.
  free_buffers_.clear();
  return Status::ok();
}

Status ChunkCache::last_error() const {
  util::MutexLock lock(mu_);
  return last_error_;
}

ChunkCache::Stats ChunkCache::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

std::size_t ChunkCache::resident() const {
  util::MutexLock lock(mu_);
  return frames_.size();
}

Status CachedDrxFile::read_box(const Box& box, MemoryOrder order,
                               std::span<std::byte> out) {
  obs::OpScope op("op.cached_read_box");
  DRX_CHECK(out.size() == checked_mul(box.volume(), file_->element_bytes()));
  const Box full{Index(file_->rank(), 0),
                 Index(file_->bounds().begin(), file_->bounds().end())};
  const Box clipped = box.intersect(full);
  if (clipped.empty()) return Status::ok();
  // Announce the whole box before the first pin: an async cache turns
  // this into coalesced background faults the pins below then hit.
  file_->prefetch_box(clipped);
  Status result;
  for_each_index(space_.covering_chunks(clipped), [&](const Index& c) {
    if (!result.is_ok()) return;
    const Box clip = space_.chunk_box(c).intersect(clipped);
    if (clip.empty()) return;
    const std::uint64_t q = file_->chunk_address(c);
    auto pinned = cache_.pin(q);
    if (!pinned.is_ok()) {
      result = pinned.status();
      return;
    }
    file_->scatter_chunk(pinned.value(), clip, box, order, out);
    cache_.unpin(q, /*dirty=*/false);
  });
  return result;
}

}  // namespace drx::core
