// k-dimensional coordinate helpers shared across the core library.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "util/checked.hpp"
#include "util/error.hpp"

namespace drx::core {

/// A k-dimensional index or extent vector. Rank is small (typically <= 4),
/// so std::vector keeps the interface simple; hot paths reuse buffers.
using Index = std::vector<std::uint64_t>;
using Shape = std::vector<std::uint64_t>;

/// Strides of a dense array of `shape` in the given order: linear address
/// = sum_i idx[i] * strides[i].
inline Shape strides_of(std::span<const std::uint64_t> shape,
                        MemoryOrder order) {
  Shape strides(shape.size(), 1);
  if (shape.empty()) return strides;
  if (order == MemoryOrder::kRowMajor) {
    for (std::size_t d = shape.size() - 1; d-- > 0;) {
      strides[d] = checked_mul(strides[d + 1], shape[d + 1]);
    }
  } else {
    for (std::size_t d = 1; d < shape.size(); ++d) {
      strides[d] = checked_mul(strides[d - 1], shape[d - 1]);
    }
  }
  return strides;
}

/// Linearizes `idx` within a dense array of `shape` in the given order.
inline std::uint64_t linearize(std::span<const std::uint64_t> idx,
                               std::span<const std::uint64_t> shape,
                               MemoryOrder order) {
  DRX_CHECK(idx.size() == shape.size());
  std::uint64_t addr = 0;
  if (order == MemoryOrder::kRowMajor) {
    for (std::size_t d = 0; d < shape.size(); ++d) {
      DRX_CHECK(idx[d] < shape[d]);
      addr = checked_add(checked_mul(addr, shape[d]), idx[d]);
    }
  } else {
    for (std::size_t d = shape.size(); d-- > 0;) {
      DRX_CHECK(idx[d] < shape[d]);
      addr = checked_add(checked_mul(addr, shape[d]), idx[d]);
    }
  }
  return addr;
}

/// Inverse of linearize.
inline Index delinearize(std::uint64_t addr,
                         std::span<const std::uint64_t> shape,
                         MemoryOrder order) {
  Index idx(shape.size(), 0);
  if (order == MemoryOrder::kRowMajor) {
    for (std::size_t d = shape.size(); d-- > 0;) {
      idx[d] = addr % shape[d];
      addr /= shape[d];
    }
  } else {
    for (std::size_t d = 0; d < shape.size(); ++d) {
      idx[d] = addr % shape[d];
      addr /= shape[d];
    }
  }
  DRX_CHECK_MSG(addr == 0, "address outside array shape");
  return idx;
}

/// A half-open k-dimensional box [lo, hi).
struct Box {
  Index lo;
  Index hi;

  [[nodiscard]] std::size_t rank() const noexcept { return lo.size(); }

  [[nodiscard]] bool empty() const noexcept {
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (lo[d] >= hi[d]) return true;
    }
    return lo.empty();
  }

  [[nodiscard]] Shape shape() const {
    Shape s(lo.size());
    for (std::size_t d = 0; d < lo.size(); ++d) {
      s[d] = hi[d] > lo[d] ? hi[d] - lo[d] : 0;
    }
    return s;
  }

  [[nodiscard]] std::uint64_t volume() const {
    if (empty()) return 0;
    return checked_product(shape());
  }

  [[nodiscard]] bool contains(std::span<const std::uint64_t> idx) const {
    DRX_CHECK(idx.size() == lo.size());
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (idx[d] < lo[d] || idx[d] >= hi[d]) return false;
    }
    return true;
  }

  [[nodiscard]] Box intersect(const Box& other) const {
    DRX_CHECK(other.rank() == rank());
    Box out{lo, hi};
    for (std::size_t d = 0; d < lo.size(); ++d) {
      out.lo[d] = std::max(lo[d], other.lo[d]);
      out.hi[d] = std::min(hi[d], other.hi[d]);
      if (out.hi[d] < out.lo[d]) out.hi[d] = out.lo[d];
    }
    return out;
  }

  friend bool operator==(const Box&, const Box&) = default;
};

/// Calls `fn(idx)` for every index of the box in row-major order.
template <typename Fn>
void for_each_index(const Box& box, Fn&& fn) {
  if (box.empty()) return;
  Index idx = box.lo;
  for (;;) {
    fn(static_cast<const Index&>(idx));
    std::size_t d = idx.size();
    for (;;) {
      if (d == 0) return;
      --d;
      if (++idx[d] < box.hi[d]) break;
      idx[d] = box.lo[d];
    }
  }
}

}  // namespace drx::core
