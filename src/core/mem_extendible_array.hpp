// Memory-resident extendible arrays (paper Sec. I: "DRX has the added
// feature that the memory arrays can be maintained as either conventional
// arrays or memory resident extendible arrays").
//
// The same axial-vector mapping drives an in-core array: chunks are heap
// blocks addressed by F*, so the array grows along any dimension in O(1)
// amortized allocations and NO element ever moves — in contrast to a
// std::vector-of-rows style reshape. The companion realization function
// discussion is in the authors' STDBM'06 paper ([22] in the references).
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "core/axial_mapping.hpp"
#include "core/chunk_space.hpp"
#include "core/coords.hpp"

namespace drx::core {

template <typename T>
class MemExtendibleArray {
 public:
  /// Creates with initial element bounds; chunk shape picks the in-core
  /// allocation granularity.
  MemExtendibleArray(Shape element_bounds, Shape chunk_shape,
                     MemoryOrder in_chunk_order = MemoryOrder::kRowMajor)
      : bounds_(std::move(element_bounds)),
        space_(std::move(chunk_shape), in_chunk_order),
        mapping_(space_.chunk_bounds_for(bounds_)) {
    chunks_.resize(checked_size(mapping_.total_chunks()));
  }

  [[nodiscard]] std::size_t rank() const noexcept { return bounds_.size(); }
  [[nodiscard]] const Shape& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint64_t allocated_chunks() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : chunks_) n += c != nullptr ? 1u : 0u;
    return n;
  }
  [[nodiscard]] const AxialMapping& mapping() const noexcept {
    return mapping_;
  }

  /// Extends dimension `dim` by `delta` element indices. Existing chunk
  /// blocks are untouched; new grid rows get lazily-allocated slots.
  void extend(std::size_t dim, std::uint64_t delta) {
    DRX_CHECK(dim < rank());
    if (delta == 0) return;
    bounds_[dim] = checked_add(bounds_[dim], delta);
    const Shape needed = space_.chunk_bounds_for(bounds_);
    if (needed[dim] > mapping_.bounds()[dim]) {
      mapping_.extend(dim, needed[dim] - mapping_.bounds()[dim]);
      chunks_.resize(checked_size(mapping_.total_chunks()));
    }
  }

  /// Element access; unwritten regions read as T{}.
  [[nodiscard]] T get(std::span<const std::uint64_t> index) const {
    check_index(index);
    const std::uint64_t q = mapping_.address_of(space_.chunk_of(index));
    const auto& chunk = chunks_[checked_size(q)];
    if (chunk == nullptr) return T{};
    return chunk[checked_size(space_.offset_in_chunk(index))];
  }

  void set(std::span<const std::uint64_t> index, const T& value) {
    check_index(index);
    const std::uint64_t q = mapping_.address_of(space_.chunk_of(index));
    auto& chunk = chunks_[checked_size(q)];
    if (chunk == nullptr) {
      chunk = std::make_unique<T[]>(
          checked_size(space_.elements_per_chunk()));
      std::fill_n(chunk.get(), checked_size(space_.elements_per_chunk()),
                  T{});
    }
    chunk[checked_size(space_.offset_in_chunk(index))] = value;
  }

  /// Reference access that materializes the chunk (operator[]-style).
  T& at(std::span<const std::uint64_t> index) {
    check_index(index);
    const std::uint64_t q = mapping_.address_of(space_.chunk_of(index));
    auto& chunk = chunks_[checked_size(q)];
    if (chunk == nullptr) {
      chunk = std::make_unique<T[]>(
          checked_size(space_.elements_per_chunk()));
      std::fill_n(chunk.get(), checked_size(space_.elements_per_chunk()),
                  T{});
    }
    return chunk[checked_size(space_.offset_in_chunk(index))];
  }

  /// Dense copy-out of a box in the requested order.
  void read_box(const Box& box, MemoryOrder order, std::span<T> out) const {
    DRX_CHECK(out.size() == box.volume());
    const Shape shape = box.shape();
    Index rel(rank());
    for_each_index(box, [&](const Index& idx) {
      for (std::size_t d = 0; d < rank(); ++d) rel[d] = idx[d] - box.lo[d];
      out[checked_size(linearize(rel, shape, order))] = get(idx);
    });
  }

 private:
  void check_index(std::span<const std::uint64_t> index) const {
    DRX_CHECK(index.size() == rank());
    for (std::size_t d = 0; d < rank(); ++d) {
      DRX_CHECK_MSG(index[d] < bounds_[d], "element index out of bounds");
    }
  }

  Shape bounds_;
  ChunkSpace space_;
  AxialMapping mapping_;
  std::vector<std::unique_ptr<T[]>> chunks_;  ///< indexed by F* address
};

}  // namespace drx::core
