#include "core/metadata.hpp"

#include <algorithm>

namespace drx::core {

namespace {
/// FNV-1a over the payload; cheap corruption tripwire for .xmd files.
std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}
}  // namespace

Metadata::Metadata(ElementType t, MemoryOrder order, Shape elem_bounds,
                   Shape chunk_shape_in)
    : dtype(t),
      in_chunk_order(order),
      element_bounds(std::move(elem_bounds)),
      chunk_shape(std::move(chunk_shape_in)),
      mapping(ChunkSpace(chunk_shape, order)
                  .chunk_bounds_for(element_bounds)) {
  DRX_CHECK(element_bounds.size() == chunk_shape.size());
}

std::optional<std::uint64_t> Metadata::extend_elements(std::size_t dim,
                                                       std::uint64_t delta) {
  DRX_CHECK(dim < rank());
  element_bounds[dim] = checked_add(element_bounds[dim], delta);
  const Shape needed = chunk_space().chunk_bounds_for(element_bounds);
  if (needed[dim] <= mapping.bounds()[dim]) return std::nullopt;
  return mapping.extend(dim, needed[dim] - mapping.bounds()[dim]);
}

std::uint64_t Metadata::stored_data_bytes() const {
  if (!compressed()) return data_file_bytes();
  std::uint64_t end = 0;
  for (const ChunkSlot& s : chunk_table) {
    end = std::max(end, s.offset + s.stored);
  }
  return end;
}

std::uint64_t Metadata::stored_live_bytes() const {
  std::uint64_t total = 0;
  for (const ChunkSlot& s : chunk_table) total += s.stored;
  return total;
}

std::vector<std::byte> Metadata::to_bytes() const {
  ByteWriter payload;
  payload.put_u8(static_cast<std::uint8_t>(dtype));
  payload.put_u8(static_cast<std::uint8_t>(in_chunk_order));
  payload.put_u32(static_cast<std::uint32_t>(rank()));
  for (std::uint64_t b : element_bounds) payload.put_u64(b);
  for (std::uint64_t c : chunk_shape) payload.put_u64(c);
  mapping.serialize(payload);
  if (compressed()) {
    payload.put_u8(static_cast<std::uint8_t>(codec));
    payload.put_u64(data_end);
    payload.put_u64(chunk_table.size());
    for (const ChunkSlot& s : chunk_table) {
      payload.put_u64(s.offset);
      payload.put_u32(s.stored);
      payload.put_u32(s.capacity);
      payload.put_u8(s.codec);
    }
  }

  ByteWriter out;
  out.put_u32(kMagic);
  out.put_u32(compressed() ? kVersionCompressed : kVersion);
  out.put_u64(payload.size());
  out.put_u64(fnv1a(payload.bytes()));
  out.put_bytes(payload.bytes());
  return std::move(out).take();
}

Result<Metadata> Metadata::from_bytes(std::span<const std::byte> data) {
  ByteReader reader(data);
  DRX_ASSIGN_OR_RETURN(std::uint32_t magic, reader.get_u32());
  if (magic != kMagic) {
    return Status(ErrorCode::kCorrupt, "bad .xmd magic");
  }
  DRX_ASSIGN_OR_RETURN(std::uint32_t version, reader.get_u32());
  if (version != kVersion && version != kVersionCompressed) {
    return Status(ErrorCode::kUnsupported, ".xmd version not supported");
  }
  DRX_ASSIGN_OR_RETURN(std::uint64_t payload_len, reader.get_u64());
  DRX_ASSIGN_OR_RETURN(std::uint64_t checksum, reader.get_u64());
  if (reader.remaining() < payload_len) {
    return Status(ErrorCode::kCorrupt, ".xmd truncated");
  }
  const std::span<const std::byte> payload =
      data.subspan(data.size() - reader.remaining(),
                   static_cast<std::size_t>(payload_len));
  if (fnv1a(payload) != checksum) {
    return Status(ErrorCode::kCorrupt, ".xmd checksum mismatch");
  }

  ByteReader body(payload);
  Metadata meta;
  DRX_ASSIGN_OR_RETURN(std::uint8_t dtype_raw, body.get_u8());
  if (dtype_raw > static_cast<std::uint8_t>(ElementType::kComplexDouble)) {
    return Status(ErrorCode::kCorrupt, "unknown element type");
  }
  meta.dtype = static_cast<ElementType>(dtype_raw);
  DRX_ASSIGN_OR_RETURN(std::uint8_t order_raw, body.get_u8());
  if (order_raw > 1) {
    return Status(ErrorCode::kCorrupt, "unknown in-chunk order");
  }
  meta.in_chunk_order = static_cast<MemoryOrder>(order_raw);
  DRX_ASSIGN_OR_RETURN(std::uint32_t k, body.get_u32());
  if (k == 0 || k > 64) {
    return Status(ErrorCode::kCorrupt, "implausible rank");
  }
  meta.element_bounds.resize(k);
  for (auto& b : meta.element_bounds) {
    DRX_ASSIGN_OR_RETURN(b, body.get_u64());
  }
  meta.chunk_shape.resize(k);
  for (auto& c : meta.chunk_shape) {
    DRX_ASSIGN_OR_RETURN(c, body.get_u64());
    if (c == 0) return Status(ErrorCode::kCorrupt, "zero chunk extent");
  }
  DRX_ASSIGN_OR_RETURN(meta.mapping, AxialMapping::deserialize(body));
  if (meta.mapping.rank() != k) {
    return Status(ErrorCode::kCorrupt, "mapping rank mismatch");
  }
  // The chunk grid must cover the element bounds.
  const Shape expect =
      meta.chunk_space().chunk_bounds_for(meta.element_bounds);
  for (std::size_t d = 0; d < k; ++d) {
    if (meta.mapping.bounds()[d] < expect[d]) {
      return Status(ErrorCode::kCorrupt,
                    "chunk grid does not cover element bounds");
    }
  }

  if (version == kVersionCompressed) {
    DRX_ASSIGN_OR_RETURN(std::uint8_t codec_raw, body.get_u8());
    if (!codec::valid_codec(codec_raw) ||
        codec_raw == static_cast<std::uint8_t>(codec::CodecId::kNone)) {
      return Status(ErrorCode::kCorrupt, "bad array codec id");
    }
    meta.codec = static_cast<codec::CodecId>(codec_raw);
    DRX_ASSIGN_OR_RETURN(meta.data_end, body.get_u64());
    DRX_ASSIGN_OR_RETURN(std::uint64_t slots, body.get_u64());
    if (slots != meta.mapping.total_chunks()) {
      return Status(ErrorCode::kCorrupt,
                    "chunk table does not match the chunk grid");
    }
    const std::uint64_t chunk_sz = meta.chunk_bytes();
    meta.chunk_table.resize(checked_size(slots));
    for (ChunkSlot& s : meta.chunk_table) {
      DRX_ASSIGN_OR_RETURN(s.offset, body.get_u64());
      DRX_ASSIGN_OR_RETURN(s.stored, body.get_u32());
      DRX_ASSIGN_OR_RETURN(s.capacity, body.get_u32());
      DRX_ASSIGN_OR_RETURN(s.codec, body.get_u8());
      if (!codec::valid_codec(s.codec) || s.stored > s.capacity ||
          checked_add(s.offset, s.capacity) > meta.data_end) {
        return Status(ErrorCode::kCorrupt, "chunk slot out of bounds");
      }
      const bool raw_slot =
          s.codec == static_cast<std::uint8_t>(codec::CodecId::kNone);
      if (raw_slot ? s.stored != chunk_sz
                   : (s.stored == 0 || s.stored >= chunk_sz)) {
        return Status(ErrorCode::kCorrupt, "chunk slot size implausible");
      }
    }
  }
  return meta;
}

}  // namespace drx::core
