#include "baselines/btree_chunk_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/serde.hpp"

namespace drx::baselines {

namespace {
constexpr std::uint32_t kMagic = 0x48354254;  // "H5BT"
constexpr std::uint64_t kHeaderPage = 0;
}  // namespace

Result<BTreeChunkStore> BTreeChunkStore::create(
    std::unique_ptr<pfs::Storage> storage, std::size_t rank,
    std::uint64_t chunk_bytes, const Options& options) {
  if (rank == 0 || rank > 16 || chunk_bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "bad rank or chunk size");
  }
  BTreeChunkStore store(std::move(storage), options);
  store.rank_ = rank;
  store.chunk_bytes_ = chunk_bytes;
  store.tail_ = kPageBytes;  // page 0 is the header
  DRX_RETURN_IF_ERROR(store.storage_->truncate(0));
  store.root_ = store.allocate_page();
  Node root;
  root.is_leaf = true;
  DRX_RETURN_IF_ERROR(store.write_node(store.root_, root));
  store.put(store.root_, std::move(root), /*dirty=*/false);
  DRX_RETURN_IF_ERROR(store.write_header());
  return store;
}

Result<BTreeChunkStore> BTreeChunkStore::open(
    std::unique_ptr<pfs::Storage> storage, const Options& options) {
  BTreeChunkStore store(std::move(storage), options);
  DRX_RETURN_IF_ERROR(store.read_header());
  return store;
}

Status BTreeChunkStore::write_header() {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u32(static_cast<std::uint32_t>(rank_));
  w.put_u64(chunk_bytes_);
  w.put_u64(chunk_count_);
  w.put_u64(root_);
  w.put_u64(tail_);
  std::vector<std::byte> page(checked_size(kPageBytes), std::byte{0});
  DRX_CHECK(w.size() <= page.size());
  std::memcpy(page.data(), w.bytes().data(), w.size());
  return storage_->write_at(kHeaderPage, page);
}

Status BTreeChunkStore::read_header() {
  std::vector<std::byte> page(checked_size(kPageBytes));
  DRX_RETURN_IF_ERROR(storage_->read_at(kHeaderPage, page));
  ByteReader r(page);
  DRX_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kMagic) {
    return Status(ErrorCode::kCorrupt, "bad B-tree store magic");
  }
  DRX_ASSIGN_OR_RETURN(std::uint32_t k, r.get_u32());
  if (k == 0 || k > 16) {
    return Status(ErrorCode::kCorrupt, "implausible rank");
  }
  rank_ = k;
  DRX_ASSIGN_OR_RETURN(chunk_bytes_, r.get_u64());
  DRX_ASSIGN_OR_RETURN(chunk_count_, r.get_u64());
  DRX_ASSIGN_OR_RETURN(root_, r.get_u64());
  DRX_ASSIGN_OR_RETURN(tail_, r.get_u64());
  return Status::ok();
}

int BTreeChunkStore::compare_keys(std::span<const std::uint64_t> a,
                                  std::span<const std::uint64_t> b) {
  DRX_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::byte> BTreeChunkStore::encode_node(const Node& node) const {
  ByteWriter w;
  w.put_u8(node.is_leaf ? 1 : 0);
  w.put_u8(0);
  w.put_u32(static_cast<std::uint32_t>(node.keys.size()));
  if (node.is_leaf) {
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      for (std::uint64_t v : node.keys[i]) w.put_u64(v);
      w.put_u64(node.values[i]);
    }
  } else {
    w.put_u64(node.children[0]);
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      for (std::uint64_t v : node.keys[i]) w.put_u64(v);
      w.put_u64(node.children[i + 1]);
    }
  }
  std::vector<std::byte> page(checked_size(kPageBytes), std::byte{0});
  DRX_CHECK_MSG(w.size() <= page.size(), "node overflows its page");
  std::memcpy(page.data(), w.bytes().data(), w.size());
  return page;
}

Result<BTreeChunkStore::Node> BTreeChunkStore::decode_node(
    std::span<const std::byte> page) const {
  ByteReader r(page);
  Node node;
  DRX_ASSIGN_OR_RETURN(std::uint8_t leaf, r.get_u8());
  node.is_leaf = leaf != 0;
  DRX_ASSIGN_OR_RETURN(std::uint8_t pad, r.get_u8());
  (void)pad;
  DRX_ASSIGN_OR_RETURN(std::uint32_t count, r.get_u32());
  if (count > kPageBytes / 8) {
    return Status(ErrorCode::kCorrupt, "implausible node entry count");
  }
  if (!node.is_leaf) {
    std::uint64_t child0 = 0;
    DRX_ASSIGN_OR_RETURN(child0, r.get_u64());
    node.children.push_back(child0);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::vector<std::uint64_t> key(rank_);
    for (auto& v : key) {
      DRX_ASSIGN_OR_RETURN(v, r.get_u64());
    }
    node.keys.push_back(std::move(key));
    std::uint64_t v = 0;
    DRX_ASSIGN_OR_RETURN(v, r.get_u64());
    if (node.is_leaf) {
      node.values.push_back(v);
    } else {
      node.children.push_back(v);
    }
  }
  return node;
}

Status BTreeChunkStore::write_node(std::uint64_t page_offset,
                                   const Node& node) {
  return storage_->write_at(page_offset, encode_node(node));
}

Result<BTreeChunkStore::Node*> BTreeChunkStore::fetch(
    std::uint64_t page_offset) {
  auto it = cache_.find(page_offset);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    lru_.erase(it->second.lru_it);
    lru_.push_front(page_offset);
    it->second.lru_it = lru_.begin();
    return &it->second.node;
  }
  ++stats_.node_fetches;
  std::vector<std::byte> page(checked_size(kPageBytes));
  DRX_RETURN_IF_ERROR(storage_->read_at(page_offset, page));
  DRX_ASSIGN_OR_RETURN(Node node, decode_node(page));
  return put(page_offset, std::move(node), /*dirty=*/false);
}

BTreeChunkStore::Node* BTreeChunkStore::put(std::uint64_t page_offset,
                                            Node node, bool dirty) {
  DRX_IGNORE_STATUS(evict_if_needed(),
                    "eviction failures only matter on flush");
  lru_.push_front(page_offset);
  CacheEntry entry;
  entry.node = std::move(node);
  entry.dirty = dirty;
  entry.lru_it = lru_.begin();
  auto [it, inserted] = cache_.insert_or_assign(page_offset,
                                                std::move(entry));
  (void)inserted;
  return &it->second.node;
}

void BTreeChunkStore::mark_dirty(std::uint64_t page_offset) {
  auto it = cache_.find(page_offset);
  DRX_CHECK(it != cache_.end());
  it->second.dirty = true;
}

Status BTreeChunkStore::evict_if_needed() {
  while (cache_.size() >= options_.cache_pages && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    DRX_CHECK(it != cache_.end());
    if (it->second.dirty) {
      DRX_RETURN_IF_ERROR(write_node(victim, it->second.node));
    }
    cache_.erase(it);
  }
  return Status::ok();
}

std::uint64_t BTreeChunkStore::allocate_page() {
  const std::uint64_t off = tail_;
  tail_ += kPageBytes;
  return off;
}

std::uint64_t BTreeChunkStore::allocate_chunk() {
  const std::uint64_t off = tail_;
  tail_ += chunk_bytes_;
  ++chunk_count_;
  return off;
}

Result<std::uint64_t> BTreeChunkStore::lookup(
    std::span<const std::uint64_t> key) {
  DRX_CHECK(key.size() == rank_);
  ++stats_.lookups;
  std::uint64_t page = root_;
  for (;;) {
    DRX_ASSIGN_OR_RETURN(Node* node, fetch(page));
    // First key strictly greater than `key`.
    std::size_t pos = node->keys.size();
    for (std::size_t i = 0; i < node->keys.size(); ++i) {
      if (compare_keys(key, node->keys[i]) < 0) {
        pos = i;
        break;
      }
    }
    if (node->is_leaf) {
      // Leaf keys are exact entries; pos-1 is the last key <= `key`.
      if (pos == 0 || compare_keys(node->keys[pos - 1], key) != 0) {
        return Status(ErrorCode::kNotFound, "chunk not in index");
      }
      return node->values[pos - 1];
    }
    page = node->children[pos];
  }
}

Status BTreeChunkStore::insert_into(std::uint64_t page_offset,
                                    std::span<const std::uint64_t> key,
                                    std::uint64_t value, bool* did_split,
                                    std::vector<std::uint64_t>* split_key,
                                    std::uint64_t* split_page) {
  *did_split = false;
  DRX_ASSIGN_OR_RETURN(Node* node_ptr, fetch(page_offset));

  if (!node_ptr->is_leaf) {
    std::size_t pos = node_ptr->keys.size();
    for (std::size_t i = 0; i < node_ptr->keys.size(); ++i) {
      if (compare_keys(key, node_ptr->keys[i]) < 0) {
        pos = i;
        break;
      }
    }
    const std::uint64_t child = node_ptr->children[pos];
    bool child_split = false;
    std::vector<std::uint64_t> child_key;
    std::uint64_t child_page = 0;
    // The recursive call may evict node_ptr; re-fetch after it returns.
    DRX_RETURN_IF_ERROR(insert_into(child, key, value, &child_split,
                                    &child_key, &child_page));
    if (!child_split) return Status::ok();

    DRX_ASSIGN_OR_RETURN(node_ptr, fetch(page_offset));
    node_ptr->keys.insert(
        node_ptr->keys.begin() + static_cast<std::ptrdiff_t>(pos), child_key);
    node_ptr->children.insert(
        node_ptr->children.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
        child_page);
    mark_dirty(page_offset);

    if (node_ptr->keys.size() > internal_capacity()) {
      ++stats_.splits;
      Node right;
      right.is_leaf = false;
      const std::size_t mid = node_ptr->keys.size() / 2;
      *split_key = node_ptr->keys[mid];
      right.keys.assign(node_ptr->keys.begin() +
                            static_cast<std::ptrdiff_t>(mid) + 1,
                        node_ptr->keys.end());
      right.children.assign(node_ptr->children.begin() +
                                static_cast<std::ptrdiff_t>(mid) + 1,
                            node_ptr->children.end());
      node_ptr->keys.resize(mid);
      node_ptr->children.resize(mid + 1);
      const std::uint64_t right_page = allocate_page();
      DRX_RETURN_IF_ERROR(write_node(right_page, right));
      put(right_page, std::move(right), /*dirty=*/false);
      *did_split = true;
      *split_page = right_page;
    }
    return Status::ok();
  }

  // Leaf insert (keys unique; overwrite if present).
  std::size_t pos = node_ptr->keys.size();
  for (std::size_t i = 0; i < node_ptr->keys.size(); ++i) {
    const int c = compare_keys(key, node_ptr->keys[i]);
    if (c == 0) {
      node_ptr->values[i] = value;
      mark_dirty(page_offset);
      return Status::ok();
    }
    if (c < 0) {
      pos = i;
      break;
    }
  }
  node_ptr->keys.insert(node_ptr->keys.begin() +
                            static_cast<std::ptrdiff_t>(pos),
                        std::vector<std::uint64_t>(key.begin(), key.end()));
  node_ptr->values.insert(
      node_ptr->values.begin() + static_cast<std::ptrdiff_t>(pos), value);
  mark_dirty(page_offset);

  if (node_ptr->keys.size() > leaf_capacity()) {
    ++stats_.splits;
    Node right;
    right.is_leaf = true;
    const std::size_t mid = node_ptr->keys.size() / 2;
    right.keys.assign(node_ptr->keys.begin() +
                          static_cast<std::ptrdiff_t>(mid),
                      node_ptr->keys.end());
    right.values.assign(node_ptr->values.begin() +
                            static_cast<std::ptrdiff_t>(mid),
                        node_ptr->values.end());
    *split_key = right.keys.front();
    node_ptr->keys.resize(mid);
    node_ptr->values.resize(mid);
    const std::uint64_t right_page = allocate_page();
    DRX_RETURN_IF_ERROR(write_node(right_page, right));
    put(right_page, std::move(right), /*dirty=*/false);
    *did_split = true;
    *split_page = right_page;
  }
  return Status::ok();
}

Status BTreeChunkStore::write_chunk(std::span<const std::uint64_t> key,
                                    std::span<const std::byte> data) {
  DRX_CHECK(key.size() == rank_);
  DRX_CHECK(data.size() == chunk_bytes_);
  auto found = lookup(key);
  std::uint64_t offset = 0;
  if (found.is_ok()) {
    offset = found.value();
  } else if (found.status().code() == ErrorCode::kNotFound) {
    offset = allocate_chunk();
    bool did_split = false;
    std::vector<std::uint64_t> split_key;
    std::uint64_t split_page = 0;
    DRX_RETURN_IF_ERROR(
        insert_into(root_, key, offset, &did_split, &split_key, &split_page));
    if (did_split) {
      Node new_root;
      new_root.is_leaf = false;
      new_root.keys.push_back(split_key);
      new_root.children.push_back(root_);
      new_root.children.push_back(split_page);
      const std::uint64_t new_root_page = allocate_page();
      DRX_RETURN_IF_ERROR(write_node(new_root_page, new_root));
      put(new_root_page, std::move(new_root), /*dirty=*/false);
      root_ = new_root_page;
    }
    // Header (root pointer, tail, counts) is persisted on flush(), as a
    // real file format would; writing it per insert would add a seek to
    // page 0 on every chunk allocation.
  } else {
    return found.status();
  }
  return storage_->write_at(offset, data);
}

Status BTreeChunkStore::read_chunk(std::span<const std::uint64_t> key,
                                   std::span<std::byte> out) {
  DRX_CHECK(out.size() == chunk_bytes_);
  DRX_ASSIGN_OR_RETURN(std::uint64_t offset, lookup(key));
  return storage_->read_at(offset, out);
}

Status BTreeChunkStore::flush() {
  for (auto& [offset, entry] : cache_) {
    if (entry.dirty) {
      DRX_RETURN_IF_ERROR(write_node(offset, entry.node));
      entry.dirty = false;
    }
  }
  return write_header();
}

Status BTreeChunkStore::drop_cache() {
  DRX_RETURN_IF_ERROR(flush());
  cache_.clear();
  lru_.clear();
  return Status::ok();
}

}  // namespace drx::baselines
