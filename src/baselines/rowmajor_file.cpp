#include "baselines/rowmajor_file.hpp"

#include <cstring>
#include <vector>

namespace drx::baselines {

using core::Box;
using core::Index;
using core::MemoryOrder;
using core::Shape;

Result<RowMajorFile> RowMajorFile::create(
    std::unique_ptr<pfs::Storage> storage, core::Shape bounds,
    std::uint64_t element_bytes) {
  if (bounds.empty() || element_bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "empty bounds or element");
  }
  RowMajorFile file(std::move(storage), std::move(bounds), element_bytes);
  DRX_RETURN_IF_ERROR(file.storage_->truncate(0));
  const std::uint64_t total =
      checked_mul(file.total_elements(), file.esize_);
  if (total > 0) {
    // Zero-fill sequentially in bounded slabs.
    constexpr std::uint64_t kSlab = 1 << 20;
    std::vector<std::byte> zeros(checked_size(std::min(total, kSlab)),
                                 std::byte{0});
    for (std::uint64_t off = 0; off < total; off += kSlab) {
      const std::uint64_t n = std::min(kSlab, total - off);
      DRX_RETURN_IF_ERROR(file.storage_->write_at(
          off, std::span<const std::byte>(zeros).first(checked_size(n))));
    }
  }
  return file;
}

Status RowMajorFile::read_element(std::span<const std::uint64_t> index,
                                  std::span<std::byte> out) {
  DRX_CHECK(out.size() == esize_);
  return storage_->read_at(offset_of(index), out);
}

Status RowMajorFile::write_element(std::span<const std::uint64_t> index,
                                   std::span<const std::byte> value) {
  DRX_CHECK(value.size() == esize_);
  return storage_->write_at(offset_of(index), value);
}

Status RowMajorFile::read_box(const Box& box, MemoryOrder order,
                              std::span<std::byte> out) {
  DRX_CHECK(box.rank() == bounds_.size());
  DRX_CHECK(out.size() == checked_mul(box.volume(), esize_));
  if (box.empty()) return Status::ok();
  const std::size_t k = bounds_.size();
  const Shape box_shape = box.shape();

  // Iterate the box with the file's innermost dimension innermost, so each
  // iteration covers one contiguous file run of box_shape[k-1] elements.
  Box outer = box;
  outer.lo.pop_back();
  outer.hi.pop_back();
  const std::uint64_t run_elems = box_shape[k - 1];
  const std::uint64_t run_bytes = checked_mul(run_elems, esize_);
  // Destination stride between consecutive run elements: 1 for row-major
  // (contiguous), the product of the leading box extents for col-major.
  // Precomputing it keeps the inner loop free of per-element linearize().
  std::uint64_t fast_step = 1;
  if (order == MemoryOrder::kColMajor) {
    for (std::size_t d = 0; d + 1 < k; ++d) {
      fast_step = checked_mul(fast_step, box_shape[d]);
    }
  }
  std::vector<std::byte> run(checked_size(run_bytes));
  Index idx(k);
  Index rel(k);
  Status status;
  auto body = [&](const Index& oidx) {
    if (!status.is_ok()) return;
    for (std::size_t d = 0; d + 1 < k; ++d) idx[d] = oidx[d];
    idx[k - 1] = box.lo[k - 1];
    status = storage_->read_at(offset_of(idx), run);
    if (!status.is_ok()) return;
    for (std::size_t d = 0; d < k; ++d) rel[d] = idx[d] - box.lo[d];
    const std::uint64_t dst0 = core::linearize(rel, box_shape, order);
    if (fast_step == 1) {
      // Destination is contiguous too: one memcpy.
      std::memcpy(out.data() + dst0 * esize_, run.data(),
                  checked_size(run_bytes));
    } else {
      for (std::uint64_t e = 0; e < run_elems; ++e) {
        std::memcpy(out.data() + (dst0 + e * fast_step) * esize_,
                    run.data() + e * esize_, checked_size(esize_));
      }
    }
  };
  if (k == 1) {
    Index none;
    body(none);
  } else {
    // drx-lint: allow(element-granular-copy) row-granular: each visit of
    // `body` moves one contiguous fastest-dim file run, not one element.
    core::for_each_index(outer, body);
  }
  return status;
}

Status RowMajorFile::write_box(const Box& box, MemoryOrder order,
                               std::span<const std::byte> in) {
  DRX_CHECK(box.rank() == bounds_.size());
  DRX_CHECK(in.size() == checked_mul(box.volume(), esize_));
  if (box.empty()) return Status::ok();
  const std::size_t k = bounds_.size();
  const Shape box_shape = box.shape();

  Box outer = box;
  outer.lo.pop_back();
  outer.hi.pop_back();
  const std::uint64_t run_elems = box_shape[k - 1];
  const std::uint64_t run_bytes = checked_mul(run_elems, esize_);
  // Source stride between consecutive run elements (see read_box).
  std::uint64_t fast_step = 1;
  if (order == MemoryOrder::kColMajor) {
    for (std::size_t d = 0; d + 1 < k; ++d) {
      fast_step = checked_mul(fast_step, box_shape[d]);
    }
  }
  std::vector<std::byte> run(checked_size(run_bytes));
  Index idx(k);
  Index rel(k);
  Status status;
  auto body = [&](const Index& oidx) {
    if (!status.is_ok()) return;
    for (std::size_t d = 0; d + 1 < k; ++d) idx[d] = oidx[d];
    idx[k - 1] = box.lo[k - 1];
    for (std::size_t d = 0; d < k; ++d) rel[d] = idx[d] - box.lo[d];
    const std::uint64_t src0 = core::linearize(rel, box_shape, order);
    if (fast_step == 1) {
      // Source run is contiguous: one memcpy into the staging row.
      std::memcpy(run.data(), in.data() + src0 * esize_,
                  checked_size(run_bytes));
    } else {
      for (std::uint64_t e = 0; e < run_elems; ++e) {
        std::memcpy(run.data() + e * esize_,
                    in.data() + (src0 + e * fast_step) * esize_,
                    checked_size(esize_));
      }
    }
    status = storage_->write_at(offset_of(idx), run);
  };
  if (k == 1) {
    Index none;
    body(none);
  } else {
    // drx-lint: allow(element-granular-copy) row-granular: each visit of
    // `body` moves one contiguous fastest-dim file run, not one element.
    core::for_each_index(outer, body);
  }
  return status;
}

Result<std::uint64_t> RowMajorFile::extend(std::size_t dim,
                                           std::uint64_t delta) {
  if (dim >= bounds_.size()) {
    return Status(ErrorCode::kInvalidArgument, "dimension out of range");
  }
  if (delta == 0) return std::uint64_t{0};

  if (dim == 0) {
    // The one cheap case: append zeroed records.
    const std::uint64_t old_bytes = checked_mul(total_elements(), esize_);
    bounds_[0] += delta;
    const std::uint64_t new_bytes = checked_mul(total_elements(), esize_);
    constexpr std::uint64_t kSlab = 1 << 20;
    std::vector<std::byte> zeros(
        checked_size(std::min(new_bytes - old_bytes, kSlab)), std::byte{0});
    for (std::uint64_t off = old_bytes; off < new_bytes; off += kSlab) {
      const std::uint64_t n = std::min(kSlab, new_bytes - off);
      DRX_RETURN_IF_ERROR(storage_->write_at(
          off, std::span<const std::byte>(zeros).first(checked_size(n))));
    }
    return std::uint64_t{0};
  }

  // Any other dimension: every element's address changes. Reorganize by a
  // full sequential read of the old image followed by a full sequential
  // write of the new image — the cheapest possible reorganization, and
  // still linear in the array size per extension step.
  const Shape old_bounds = bounds_;
  const std::uint64_t old_total = total_elements();
  const std::uint64_t old_bytes = checked_mul(old_total, esize_);
  std::vector<std::byte> old_image(checked_size(old_bytes));
  DRX_RETURN_IF_ERROR(storage_->read_at(0, old_image));

  bounds_[dim] += delta;
  const std::uint64_t new_bytes = checked_mul(total_elements(), esize_);
  std::vector<std::byte> new_image(checked_size(new_bytes), std::byte{0});
  // Relocate element-by-element (CPU-side; the I/O cost is the two passes).
  for (std::uint64_t a = 0; a < old_total; ++a) {
    const Index idx =
        core::delinearize(a, old_bounds, MemoryOrder::kRowMajor);
    const std::uint64_t b =
        core::linearize(idx, bounds_, MemoryOrder::kRowMajor);
    std::memcpy(new_image.data() + b * esize_, old_image.data() + a * esize_,
                checked_size(esize_));
  }
  DRX_RETURN_IF_ERROR(storage_->write_at(0, new_image));
  return old_bytes + new_bytes;
}

}  // namespace drx::baselines
