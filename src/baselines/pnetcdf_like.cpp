#include "baselines/pnetcdf_like.hpp"

#include <cstring>
#include <vector>

#include "util/serde.hpp"

namespace drx::baselines {

using core::Shape;

Result<PnetcdfLikeFile> PnetcdfLikeFile::create(simpi::Comm& comm,
                                                pfs::Pfs& fs,
                                                const std::string& name,
                                                core::Shape bounds,
                                                std::uint64_t element_bytes) {
  if (bounds.empty() || element_bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "bad geometry");
  }
  auto data = mpio::File::open(comm, fs, name + ".nc",
                               mpio::kModeRdWr | mpio::kModeCreate);
  if (!data.is_ok()) return data.status();
  PnetcdfLikeFile file(comm, fs, name, std::move(bounds), element_bytes,
                       std::move(data).value());
  DRX_RETURN_IF_ERROR(file.persist_header());
  // Allocate the initial records zero-filled.
  DRX_RETURN_IF_ERROR(file.data_.set_size(
      checked_add(kHeaderBytes,
                  checked_mul(file.bounds_[0], file.record_bytes()))));
  return file;
}

Result<PnetcdfLikeFile> PnetcdfLikeFile::open(simpi::Comm& comm,
                                              pfs::Pfs& fs,
                                              const std::string& name) {
  std::vector<std::byte> header(checked_size(kHeaderBytes));
  std::uint8_t ok = 1;
  if (comm.rank() == 0) {
    auto handle = fs.open(name + ".nc");
    if (!handle.is_ok() || !handle.value().read_at(0, header).is_ok()) {
      ok = 0;
    }
  }
  comm.bcast_value(ok, 0);
  if (ok == 0) {
    return Status(ErrorCode::kNotFound, "cannot read header: " + name);
  }
  comm.bcast_bytes(header, 0);

  ByteReader r(header);
  DRX_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kMagic) return Status(ErrorCode::kCorrupt, "bad magic");
  DRX_ASSIGN_OR_RETURN(std::uint32_t k, r.get_u32());
  if (k == 0 || k > 64) return Status(ErrorCode::kCorrupt, "bad rank");
  std::uint64_t esize = 0;
  DRX_ASSIGN_OR_RETURN(esize, r.get_u64());
  Shape bounds(k);
  for (auto& b : bounds) {
    DRX_ASSIGN_OR_RETURN(b, r.get_u64());
  }
  auto data = mpio::File::open(comm, fs, name + ".nc", mpio::kModeRdWr);
  if (!data.is_ok()) return data.status();
  return PnetcdfLikeFile(comm, fs, name, std::move(bounds), esize,
                         std::move(data).value());
}

Status PnetcdfLikeFile::persist_header() {
  comm_->barrier();
  std::uint8_t ok = 1;
  if (comm_->rank() == 0) {
    ByteWriter w;
    w.put_u32(kMagic);
    w.put_u32(static_cast<std::uint32_t>(bounds_.size()));
    w.put_u64(esize_);
    for (std::uint64_t b : bounds_) w.put_u64(b);
    std::vector<std::byte> page(checked_size(kHeaderBytes), std::byte{0});
    DRX_CHECK(w.size() <= page.size());
    std::memcpy(page.data(), w.bytes().data(), w.size());
    auto handle = fs_->open(name_ + ".nc");
    if (!handle.is_ok() || !handle.value().write_at(0, page).is_ok()) {
      ok = 0;
    }
  }
  comm_->bcast_value(ok, 0);
  return ok != 0 ? Status::ok()
                 : Status(ErrorCode::kIoError, "header write failed");
}

Status PnetcdfLikeFile::close() {
  DRX_RETURN_IF_ERROR(persist_header());
  return data_.close();
}

Status PnetcdfLikeFile::append_records(std::uint64_t count) {
  comm_->barrier();
  bounds_[0] = checked_add(bounds_[0], count);
  DRX_RETURN_IF_ERROR(data_.set_size(
      checked_add(kHeaderBytes, checked_mul(bounds_[0], record_bytes()))));
  return persist_header();
}

Result<std::uint64_t> PnetcdfLikeFile::redefine_grow(std::size_t dim,
                                                     std::uint64_t delta) {
  if (dim == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "record dimension grows via append_records");
  }
  if (dim >= bounds_.size()) {
    return Status(ErrorCode::kInvalidArgument, "dimension out of range");
  }
  comm_->barrier();

  // Define mode: rank 0 streams every record from the old geometry into
  // the new one. Records shrink-relative to the file tail, so the copy
  // runs backwards to stay in place without a scratch file.
  const Shape old_bounds = bounds_;
  const std::uint64_t old_record = record_bytes();
  bounds_[dim] = checked_add(bounds_[dim], delta);
  const std::uint64_t new_record = record_bytes();
  std::uint64_t moved = 0;

  std::uint8_t ok = 1;
  if (comm_->rank() == 0) {
    const std::size_t k = bounds_.size();
    const Shape old_fixed(old_bounds.begin() + 1, old_bounds.end());
    const Shape new_fixed(bounds_.begin() + 1, bounds_.end());
    std::vector<std::byte> old_rec(checked_size(old_record));
    std::vector<std::byte> new_rec(checked_size(new_record));
    for (std::uint64_t rec = old_bounds[0]; rec-- > 0;) {
      Status s = data_.read_at(
          checked_add(kHeaderBytes, checked_mul(rec, old_record)),
          old_rec.data(), old_record, simpi::Datatype::bytes(1));
      if (!s.is_ok()) {
        ok = 0;
        break;
      }
      // Re-linearize the record image into the grown fixed geometry.
      std::fill(new_rec.begin(), new_rec.end(), std::byte{0});
      core::Box old_box{core::Index(k - 1, 0), old_fixed};
      core::for_each_index(old_box, [&](const core::Index& idx) {
        const std::uint64_t src = core::linearize(
            idx, old_fixed, core::MemoryOrder::kRowMajor);
        const std::uint64_t dst = core::linearize(
            idx, new_fixed, core::MemoryOrder::kRowMajor);
        std::memcpy(new_rec.data() + dst * esize_,
                    old_rec.data() + src * esize_, checked_size(esize_));
      });
      s = data_.write_at(
          checked_add(kHeaderBytes, checked_mul(rec, new_record)),
          new_rec.data(), new_record, simpi::Datatype::bytes(1));
      if (!s.is_ok()) {
        ok = 0;
        break;
      }
      moved += old_record + new_record;
    }
  }
  comm_->bcast_value(ok, 0);
  if (ok == 0) {
    return Status(ErrorCode::kIoError, "redefine copy failed");
  }
  comm_->bcast_value(moved, 0);
  DRX_RETURN_IF_ERROR(persist_header());
  return moved;
}

Status PnetcdfLikeFile::write_records_all(std::uint64_t first,
                                          std::uint64_t count,
                                          std::span<const std::byte> in) {
  DRX_CHECK(in.size() == checked_mul(count, record_bytes()));
  if (first + count > bounds_[0]) {
    return Status(ErrorCode::kOutOfRange, "records out of range");
  }
  return data_.write_at_all(
      checked_add(kHeaderBytes, checked_mul(first, record_bytes())),
      in.data(), in.size(), simpi::Datatype::bytes(1));
}

Status PnetcdfLikeFile::read_records_all(std::uint64_t first,
                                         std::uint64_t count,
                                         std::span<std::byte> out) {
  DRX_CHECK(out.size() == checked_mul(count, record_bytes()));
  if (first + count > bounds_[0]) {
    return Status(ErrorCode::kOutOfRange, "records out of range");
  }
  return data_.read_at_all(
      checked_add(kHeaderBytes, checked_mul(first, record_bytes())),
      out.data(), out.size(), simpi::Datatype::bytes(1));
}

}  // namespace drx::baselines
