// DRA-like baseline: the Disk Resident Arrays model (Nieplocha & Foster)
// that DRX-MP subsumes (paper Sec. II-B). A DRA is a *fixed-bounds*
// chunked array file: chunk coordinates map to file addresses by plain
// row-major order over the (immutable) chunk grid. Zone I/O mirrors
// DRX-MP's collective path, so the E9 comparison isolates the cost of
// extendibility (axial mapping + metadata) against the fixed layout.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/coords.hpp"
#include "core/chunk_space.hpp"
#include "core/zone.hpp"
#include "mpio/file.hpp"
#include "simpi/comm.hpp"

namespace drx::baselines {

class DraLikeFile {
 public:
  [[nodiscard]] static Result<DraLikeFile> create(simpi::Comm& comm, pfs::Pfs& fs,
                                    const std::string& name,
                                    core::Shape element_bounds,
                                    core::Shape chunk_shape,
                                    std::uint64_t element_bytes);
  [[nodiscard]] static Result<DraLikeFile> open(simpi::Comm& comm, pfs::Pfs& fs,
                                  const std::string& name);

  [[nodiscard]] Status close();

  [[nodiscard]] const core::Shape& bounds() const noexcept {
    return element_bounds_;
  }
  [[nodiscard]] std::size_t rank() const noexcept {
    return element_bounds_.size();
  }
  [[nodiscard]] std::uint64_t chunk_bytes() const {
    return checked_mul(checked_product(chunk_shape_), esize_);
  }
  [[nodiscard]] const core::Shape& chunk_grid() const noexcept {
    return chunk_bounds_;
  }

  [[nodiscard]] core::Distribution block_distribution(int nprocs) const {
    return core::Distribution::block(chunk_bounds_, nprocs);
  }

  /// Clipped element box of `proc`'s BLOCK zone.
  [[nodiscard]] core::Box zone_element_box(const core::Distribution& dist,
                                           int proc) const;

  [[nodiscard]] Status read_my_zone(const core::Distribution& dist, core::MemoryOrder order,
                      std::span<std::byte> out, bool collective = true);
  [[nodiscard]] Status write_my_zone(const core::Distribution& dist,
                       core::MemoryOrder order, std::span<const std::byte> in,
                       bool collective = true);

 private:
  DraLikeFile(simpi::Comm& comm, core::Shape element_bounds,
              core::Shape chunk_shape, std::uint64_t esize, mpio::File data)
      : comm_(&comm),
        element_bounds_(std::move(element_bounds)),
        chunk_shape_(std::move(chunk_shape)),
        esize_(esize),
        chunk_space_(chunk_shape_, core::MemoryOrder::kRowMajor),
        chunk_bounds_(chunk_space_.chunk_bounds_for(element_bounds_)),
        data_(std::move(data)) {}

  [[nodiscard]] std::uint64_t chunk_address(
      std::span<const std::uint64_t> chunk) const {
    return core::linearize(chunk, chunk_bounds_,
                           core::MemoryOrder::kRowMajor);
  }

  [[nodiscard]] Status transfer_zone(const core::Distribution& dist,
                       core::MemoryOrder order, void* buf, bool collective,
                       bool writing);

  static constexpr std::uint64_t kHeaderBytes = 4096;

  simpi::Comm* comm_;
  core::Shape element_bounds_;
  core::Shape chunk_shape_;
  std::uint64_t esize_;
  core::ChunkSpace chunk_space_;
  core::Shape chunk_bounds_;
  mpio::File data_;
};

}  // namespace drx::baselines
