#include "baselines/dra_like.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/scatter.hpp"
#include "util/serde.hpp"

namespace drx::baselines {

using core::Box;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {
constexpr std::uint32_t kMagic = 0x44524131;  // "DRA1"
}

Result<DraLikeFile> DraLikeFile::create(simpi::Comm& comm, pfs::Pfs& fs,
                                        const std::string& name,
                                        core::Shape element_bounds,
                                        core::Shape chunk_shape,
                                        std::uint64_t element_bytes) {
  if (element_bounds.size() != chunk_shape.size() || element_bounds.empty()) {
    return Status(ErrorCode::kInvalidArgument, "rank mismatch");
  }
  auto file = mpio::File::open(comm, fs, name + ".dra",
                               mpio::kModeRdWr | mpio::kModeCreate);
  if (!file.is_ok()) return file.status();

  DraLikeFile dra(comm, std::move(element_bounds), std::move(chunk_shape),
                  element_bytes, std::move(file).value());
  if (comm.rank() == 0) {
    ByteWriter w;
    w.put_u32(kMagic);
    w.put_u32(static_cast<std::uint32_t>(dra.rank()));
    w.put_u64(dra.esize_);
    for (std::uint64_t b : dra.element_bounds_) w.put_u64(b);
    for (std::uint64_t c : dra.chunk_shape_) w.put_u64(c);
    std::vector<std::byte> header(checked_size(kHeaderBytes), std::byte{0});
    DRX_CHECK(w.size() <= header.size());
    std::memcpy(header.data(), w.bytes().data(), w.size());
    auto handle = fs.open(name + ".dra");
    DRX_RETURN_IF_ERROR(handle.status());
    DRX_RETURN_IF_ERROR(handle.value().write_at(0, header));
  }
  // Allocate all chunks (zero-filled) up front: DRA is not extendible.
  DRX_RETURN_IF_ERROR(dra.data_.set_size(
      checked_add(kHeaderBytes, checked_mul(checked_product(dra.chunk_bounds_),
                                            dra.chunk_bytes()))));
  return dra;
}

Result<DraLikeFile> DraLikeFile::open(simpi::Comm& comm, pfs::Pfs& fs,
                                      const std::string& name) {
  std::vector<std::byte> header(checked_size(kHeaderBytes));
  std::uint8_t ok = 1;
  if (comm.rank() == 0) {
    auto handle = fs.open(name + ".dra");
    if (!handle.is_ok() || !handle.value().read_at(0, header).is_ok()) {
      ok = 0;
    }
  }
  comm.bcast_value(ok, 0);
  if (ok == 0) {
    return Status(ErrorCode::kNotFound, "cannot read DRA header: " + name);
  }
  comm.bcast_bytes(header, 0);

  ByteReader r(header);
  DRX_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kMagic) {
    return Status(ErrorCode::kCorrupt, "bad DRA magic");
  }
  DRX_ASSIGN_OR_RETURN(std::uint32_t k, r.get_u32());
  if (k == 0 || k > 64) {
    return Status(ErrorCode::kCorrupt, "implausible DRA rank");
  }
  std::uint64_t esize = 0;
  DRX_ASSIGN_OR_RETURN(esize, r.get_u64());
  Shape bounds(k), chunk(k);
  for (auto& b : bounds) {
    DRX_ASSIGN_OR_RETURN(b, r.get_u64());
  }
  for (auto& c : chunk) {
    DRX_ASSIGN_OR_RETURN(c, r.get_u64());
    if (c == 0) return Status(ErrorCode::kCorrupt, "zero chunk extent");
  }
  auto file = mpio::File::open(comm, fs, name + ".dra", mpio::kModeRdWr);
  if (!file.is_ok()) return file.status();
  return DraLikeFile(comm, std::move(bounds), std::move(chunk), esize,
                     std::move(file).value());
}

Status DraLikeFile::close() { return data_.close(); }

Box DraLikeFile::zone_element_box(const core::Distribution& dist,
                                  int proc) const {
  const std::vector<Box> zones = dist.zones_of(proc);
  Box out{Index(rank(), 0), Index(rank(), 0)};
  if (zones.empty()) return out;
  DRX_CHECK(zones.size() == 1);
  for (std::size_t d = 0; d < rank(); ++d) {
    out.lo[d] = checked_mul(zones[0].lo[d], chunk_shape_[d]);
    out.hi[d] = std::min(checked_mul(zones[0].hi[d], chunk_shape_[d]),
                         element_bounds_[d]);
    out.lo[d] = std::min(out.lo[d], out.hi[d]);
  }
  return out;
}

Status DraLikeFile::transfer_zone(const core::Distribution& dist,
                                  MemoryOrder order, void* buf,
                                  bool collective, bool writing) {
  const Box box = zone_element_box(dist, comm_->rank());
  std::vector<Index> chunks;
  for (const Box& z : dist.zones_of(comm_->rank())) {
    core::for_each_index(z, [&](const Index& c) { chunks.push_back(c); });
  }
  const std::uint64_t cb = chunk_bytes();
  const std::size_t n = chunks.size();

  std::vector<std::uint64_t> addresses(n);
  for (std::size_t i = 0; i < n; ++i) {
    addresses[i] = chunk_address(chunks[i]);
  }
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return addresses[a] < addresses[b];
  });
  std::vector<std::uint64_t> ones(n, 1);
  std::vector<std::uint64_t> displs(n);
  for (std::size_t i = 0; i < n; ++i) {
    displs[i] = checked_add(kHeaderBytes, checked_mul(addresses[perm[i]], cb));
  }
  const simpi::Datatype chunk_type = simpi::Datatype::bytes(cb);
  const simpi::Datatype filetype =
      n == 0 ? simpi::Datatype::bytes(1)
             : simpi::Datatype::hindexed(ones, displs, chunk_type);
  data_.set_view(0, simpi::Datatype::bytes(1), filetype);

  std::vector<std::byte> staging(checked_size(checked_mul(n, cb)));
  const simpi::Datatype memtype =
      simpi::Datatype::bytes(staging.size());
  const std::uint64_t count = n == 0 ? 0 : 1;

  if (writing) {
    // Gather zone elements into chunk-major staging (sorted order).
    for (std::size_t i = 0; i < n; ++i) {
      const Index& cidx = chunks[perm[i]];
      const Box clip = chunk_space_.chunk_box(cidx).intersect(box);
      if (clip.empty()) continue;
      core::gather_box_into_chunk(
          chunk_space_, esize_,
          std::span<std::byte>(staging).subspan(checked_size(i * cb),
                                                checked_size(cb)),
          clip, box, order,
          std::span<const std::byte>(static_cast<const std::byte*>(buf),
                                     checked_size(checked_mul(box.volume(),
                                                              esize_))));
    }
    DRX_RETURN_IF_ERROR(collective
                            ? data_.write_at_all(0, staging.data(), count,
                                                 memtype)
                            : data_.write_at(0, staging.data(), count,
                                             memtype));
    return Status::ok();
  }

  DRX_RETURN_IF_ERROR(collective
                          ? data_.read_at_all(0, staging.data(), count,
                                              memtype)
                          : data_.read_at(0, staging.data(), count, memtype));
  for (std::size_t i = 0; i < n; ++i) {
    const Index& cidx = chunks[perm[i]];
    const Box clip = chunk_space_.chunk_box(cidx).intersect(box);
    if (clip.empty()) continue;
    core::scatter_chunk_into_box(
        chunk_space_, esize_,
        std::span<const std::byte>(staging).subspan(checked_size(i * cb),
                                                    checked_size(cb)),
        clip, box, order,
        std::span<std::byte>(static_cast<std::byte*>(buf),
                             checked_size(checked_mul(box.volume(),
                                                      esize_))));
  }
  return Status::ok();
}

Status DraLikeFile::read_my_zone(const core::Distribution& dist,
                                 MemoryOrder order, std::span<std::byte> out,
                                 bool collective) {
  const Box box = zone_element_box(dist, comm_->rank());
  DRX_CHECK(out.size() == checked_mul(box.volume(), esize_));
  return transfer_zone(dist, order, out.data(), collective,
                       /*writing=*/false);
}

Status DraLikeFile::write_my_zone(const core::Distribution& dist,
                                  MemoryOrder order,
                                  std::span<const std::byte> in,
                                  bool collective) {
  const Box box = zone_element_box(dist, comm_->rank());
  DRX_CHECK(in.size() == checked_mul(box.volume(), esize_));
  return transfer_zone(dist, order, const_cast<std::byte*>(in.data()),
                       collective, /*writing=*/true);
}

}  // namespace drx::baselines
