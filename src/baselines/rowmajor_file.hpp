// The conventional array file the paper motivates against (Sec. I):
// elements mapped to consecutive locations in row-major order. Behaves
// like a NetCDF-style fixed layout:
//   - extension along dimension 0 (the outermost / "record" dimension)
//     appends and is cheap;
//   - extension along any other dimension changes every element's linear
//     address and forces a full storage reorganization;
//   - reading in the non-native (column-major) order degenerates into
//     strided small accesses.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/coords.hpp"
#include "core/types.hpp"
#include "pfs/storage.hpp"

namespace drx::baselines {

class RowMajorFile {
 public:
  [[nodiscard]] static Result<RowMajorFile> create(
      std::unique_ptr<pfs::Storage> storage, core::Shape bounds,
      std::uint64_t element_bytes);

  [[nodiscard]] const core::Shape& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint64_t element_bytes() const noexcept {
    return esize_;
  }
  [[nodiscard]] std::uint64_t total_elements() const {
    return checked_product(bounds_);
  }

  [[nodiscard]] Status read_element(std::span<const std::uint64_t> index,
                      std::span<std::byte> out);
  [[nodiscard]] Status write_element(std::span<const std::uint64_t> index,
                       std::span<const std::byte> value);

  /// Reads element box [lo, hi) into `out` in the requested order. Issues
  /// one storage request per contiguous file run — exactly the access
  /// pattern a nested-loop application would generate.
  [[nodiscard]] Status read_box(const core::Box& box, core::MemoryOrder order,
                  std::span<std::byte> out);
  [[nodiscard]] Status write_box(const core::Box& box, core::MemoryOrder order,
                   std::span<const std::byte> in);

  /// Extends dimension `dim` by `delta`. dim == 0 appends zeroed rows;
  /// any other dimension rewrites the whole file (the reorganization the
  /// paper's scheme avoids). Returns the number of payload bytes moved by
  /// reorganization (0 for appends).
  [[nodiscard]] Result<std::uint64_t> extend(std::size_t dim, std::uint64_t delta);

  [[nodiscard]] pfs::Storage& storage() noexcept { return *storage_; }

 private:
  RowMajorFile(std::unique_ptr<pfs::Storage> storage, core::Shape bounds,
               std::uint64_t esize)
      : storage_(std::move(storage)),
        bounds_(std::move(bounds)),
        esize_(esize) {}

  [[nodiscard]] std::uint64_t offset_of(
      std::span<const std::uint64_t> index) const {
    return checked_mul(
        core::linearize(index, bounds_, core::MemoryOrder::kRowMajor),
        esize_);
  }

  std::unique_ptr<pfs::Storage> storage_;
  core::Shape bounds_;
  std::uint64_t esize_;
};

}  // namespace drx::baselines
