#include "baselines/order_mappings.hpp"

namespace drx::baselines {

std::uint64_t ZOrderMapping::address_of(
    std::span<const std::uint64_t> idx) const {
  DRX_CHECK(idx.size() == rank_);
  std::uint64_t addr = 0;
  const std::size_t max_bits = 64 / rank_;
  for (std::size_t d = 0; d < rank_; ++d) {
    DRX_CHECK_MSG(idx[d] < (1ULL << max_bits),
                  "index too large for interleaving");
    for (std::size_t b = 0; b < max_bits; ++b) {
      addr |= ((idx[d] >> b) & 1ULL) << (b * rank_ + (rank_ - 1 - d));
    }
  }
  return addr;
}

core::Index ZOrderMapping::index_of(std::uint64_t addr) const {
  core::Index idx(rank_, 0);
  const std::size_t max_bits = 64 / rank_;
  for (std::size_t d = 0; d < rank_; ++d) {
    for (std::size_t b = 0; b < max_bits; ++b) {
      idx[d] |= ((addr >> (b * rank_ + (rank_ - 1 - d))) & 1ULL) << b;
    }
  }
  return idx;
}

std::uint64_t SymmetricShellMapping::address_of(std::uint64_t i,
                                                std::uint64_t j) const {
  const std::uint64_t s = std::max(i, j);
  if (i == s) return s * s + j;        // row part: (s, 0..s)
  return s * s + s + (s - i);          // column part: (s-1..0, s)
}

std::pair<std::uint64_t, std::uint64_t> SymmetricShellMapping::index_of(
    std::uint64_t addr) const {
  // s = floor(sqrt(addr)), computed exactly with integer arithmetic.
  std::uint64_t s = static_cast<std::uint64_t>(
      std::sqrt(static_cast<double>(addr)));
  while (s * s > addr) --s;
  while ((s + 1) * (s + 1) <= addr) ++s;
  const std::uint64_t r = addr - s * s;
  if (r <= s) return {s, r};
  return {2 * s - r, s};
}

}  // namespace drx::baselines
