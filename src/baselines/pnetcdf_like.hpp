// Parallel-NetCDF-like baseline: a record-variable array file (paper
// Sec. II-B: NetCDF's data part holds "data record of variables that have
// an expandable dimension. Only one dimension is extendible").
//
// Layout: a fixed-size header page, then records of the UNLIMITED
// dimension (dimension 0) stored back to back; each record is the
// row-major image of one index of dimension 0. Parallel access goes
// through MPI-IO on record-aligned offsets.
//
// Extension semantics are NetCDF's:
//   - dimension 0 (the record dimension) grows by appending records;
//   - growing any fixed dimension requires `redefine()` — the
//     enter-define-mode / copy-every-record dance real NetCDF users
//     perform, costing a full rewrite (the cost DRX avoids).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/coords.hpp"
#include "mpio/file.hpp"
#include "simpi/comm.hpp"

namespace drx::baselines {

class PnetcdfLikeFile {
 public:
  /// Collective creation. `bounds[0]` is the initial record count; the
  /// remaining dimensions are fixed.
  [[nodiscard]] static Result<PnetcdfLikeFile> create(simpi::Comm& comm, pfs::Pfs& fs,
                                        const std::string& name,
                                        core::Shape bounds,
                                        std::uint64_t element_bytes);
  [[nodiscard]] static Result<PnetcdfLikeFile> open(simpi::Comm& comm, pfs::Pfs& fs,
                                      const std::string& name);

  [[nodiscard]] Status close();

  [[nodiscard]] const core::Shape& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t record_bytes() const {
    core::Shape fixed(bounds_.begin() + 1, bounds_.end());
    return checked_mul(checked_product(fixed), esize_);
  }

  /// Appends `count` zeroed records (collective; cheap — the NetCDF
  /// unlimited-dimension path).
  [[nodiscard]] Status append_records(std::uint64_t count);

  /// Grows a FIXED dimension: enter define mode and copy every record
  /// into the new geometry (collective; rank 0 performs the copy).
  /// Returns payload bytes moved.
  [[nodiscard]] Result<std::uint64_t> redefine_grow(std::size_t dim, std::uint64_t delta);

  /// Collective write/read of whole records [first, first+count) from a
  /// row-major buffer.
  [[nodiscard]] Status write_records_all(std::uint64_t first, std::uint64_t count,
                           std::span<const std::byte> in);
  [[nodiscard]] Status read_records_all(std::uint64_t first, std::uint64_t count,
                          std::span<std::byte> out);

 private:
  PnetcdfLikeFile(simpi::Comm& comm, pfs::Pfs& fs, std::string name,
                  core::Shape bounds, std::uint64_t esize, mpio::File data)
      : comm_(&comm),
        fs_(&fs),
        name_(std::move(name)),
        bounds_(std::move(bounds)),
        esize_(esize),
        data_(std::move(data)) {}

  [[nodiscard]] Status persist_header();

  static constexpr std::uint64_t kHeaderBytes = 1024;
  static constexpr std::uint32_t kMagic = 0x704E4331;  // "pNC1"

  simpi::Comm* comm_;
  pfs::Pfs* fs_;
  std::string name_;
  core::Shape bounds_;
  std::uint64_t esize_;
  mpio::File data_;
};

}  // namespace drx::baselines
