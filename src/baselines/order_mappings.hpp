// The element-allocation schemes of paper Fig. 2: row-major order,
// Z (Morton) order, and the symmetric linear shell order. The fourth
// scheme — the arbitrary linear shell order of Fig. 2d — is the axial
// mapping itself (core/axial_mapping.hpp).
//
// These are the comparison points for extendibility semantics:
//   - row-major extends in one dimension only;
//   - Z-order grows only by doubling, cyclically;
//   - symmetric shell grows linearly but only cyclically;
//   - the axial mapping grows linearly along arbitrary dimensions.
#pragma once

#include <cstdint>
#include <span>

#include "core/coords.hpp"

namespace drx::baselines {

/// Conventional row-major (C order) mapping over fixed bounds (Fig. 2a).
class RowMajorMapping {
 public:
  explicit RowMajorMapping(core::Shape bounds) : bounds_(std::move(bounds)) {}

  [[nodiscard]] std::uint64_t address_of(
      std::span<const std::uint64_t> idx) const {
    return core::linearize(idx, bounds_, core::MemoryOrder::kRowMajor);
  }
  [[nodiscard]] core::Index index_of(std::uint64_t addr) const {
    return core::delinearize(addr, bounds_, core::MemoryOrder::kRowMajor);
  }
  [[nodiscard]] const core::Shape& bounds() const noexcept { return bounds_; }

 private:
  core::Shape bounds_;
};

/// Z-order / Morton mapping (Fig. 2b): bit-interleaved indices. Growth is
/// exponential — the array doubles along dimensions in cyclic order.
/// Bit b of dimension d lands at position b*k + (k-1-d), making the last
/// dimension vary fastest (matching row-major convention at small scales).
class ZOrderMapping {
 public:
  explicit ZOrderMapping(std::size_t rank) : rank_(rank) {
    DRX_CHECK(rank >= 1 && rank <= 8);
  }

  [[nodiscard]] std::uint64_t address_of(
      std::span<const std::uint64_t> idx) const;
  [[nodiscard]] core::Index index_of(std::uint64_t addr) const;
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

 private:
  std::size_t rank_;
};

/// Symmetric linear shell order, 2-D (Fig. 2c): shell s = max(i, j) covers
/// addresses [s^2, (s+1)^2); within a shell, the row part (s, 0..s) comes
/// first, then the column part (s-1..0, s). Growth is linear but the two
/// dimensions must expand in strict alternation, otherwise "chunk
/// locations may be assigned but unused" (paper Sec. III-A).
class SymmetricShellMapping {
 public:
  [[nodiscard]] std::uint64_t address_of(std::uint64_t i,
                                         std::uint64_t j) const;
  /// (i, j) of a linear address.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> index_of(
      std::uint64_t addr) const;
};

}  // namespace drx::baselines
