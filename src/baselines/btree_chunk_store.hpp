// HDF5-style chunked array storage: chunks are appended to the file and
// located through an on-disk B+tree keyed by the chunk's k-dimensional
// coordinates (paper Sec. I: "HDF5 achieves extendibility through array
// chunking with the chunks indexed by a B-Tree indexing method").
//
// This is the comparator for the paper's computed-access claim: every
// chunk access costs a root-to-leaf walk (O(log n) node fetches, softened
// by an LRU node cache) versus DRX's O(k + log E) in-memory arithmetic.
//
// Extendibility falls out of the index: any chunk coordinate can be
// inserted, so the array grows along any dimension — at the price of
// per-access index traffic and per-chunk index storage.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/coords.hpp"
#include "pfs/storage.hpp"

namespace drx::baselines {

class BTreeChunkStore {
 public:
  struct Options {
    std::size_t cache_pages = 64;  ///< LRU node cache capacity
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t node_fetches = 0;  ///< pages read from storage
    std::uint64_t cache_hits = 0;
    std::uint64_t splits = 0;
  };

  static constexpr std::uint64_t kPageBytes = 4096;

  [[nodiscard]] static Result<BTreeChunkStore> create(std::unique_ptr<pfs::Storage> storage,
                                        std::size_t rank,
                                        std::uint64_t chunk_bytes,
                                        const Options& options);
  [[nodiscard]] static Result<BTreeChunkStore> create(std::unique_ptr<pfs::Storage> storage,
                                        std::size_t rank,
                                        std::uint64_t chunk_bytes) {
    return create(std::move(storage), rank, chunk_bytes, Options{});
  }
  [[nodiscard]] static Result<BTreeChunkStore> open(std::unique_ptr<pfs::Storage> storage,
                                      const Options& options);
  [[nodiscard]] static Result<BTreeChunkStore> open(std::unique_ptr<pfs::Storage> storage) {
    return open(std::move(storage), Options{});
  }

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint64_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }
  [[nodiscard]] std::uint64_t chunk_count() const noexcept {
    return chunk_count_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// File offset of the chunk with the given coordinates; kNotFound if the
  /// chunk was never written.
  [[nodiscard]] Result<std::uint64_t> lookup(std::span<const std::uint64_t> key);

  /// Writes (allocating on first write) the chunk at `key`.
  [[nodiscard]] Status write_chunk(std::span<const std::uint64_t> key,
                     std::span<const std::byte> data);

  /// Reads the chunk at `key`; kNotFound if absent.
  [[nodiscard]] Status read_chunk(std::span<const std::uint64_t> key,
                    std::span<std::byte> out);

  /// Writes back dirty cached nodes and the header.
  [[nodiscard]] Status flush();

  /// Drops all cached nodes (flushing dirty ones) — models a cold cache.
  [[nodiscard]] Status drop_cache();

 private:
  BTreeChunkStore(std::unique_ptr<pfs::Storage> storage,
                  const Options& options)
      : storage_(std::move(storage)), options_(options) {}

  // ---- node layout -----------------------------------------------------
  // Page image: u8 is_leaf, u8 pad, u16 count, u32 pad, then entries.
  //   leaf entry:     key[k] u64s + chunk offset u64
  //   internal:       child0 u64, then (key[k] u64s + child u64) pairs
  struct Node {
    bool is_leaf = true;
    std::vector<std::vector<std::uint64_t>> keys;
    std::vector<std::uint64_t> values;    // leaf: chunk offsets
    std::vector<std::uint64_t> children;  // internal: keys.size() + 1
  };

  [[nodiscard]] std::size_t leaf_capacity() const {
    return (kPageBytes - 8) / ((rank_ + 1) * 8);
  }
  [[nodiscard]] std::size_t internal_capacity() const {
    return (kPageBytes - 16) / ((rank_ + 1) * 8);
  }

  static int compare_keys(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b);

  std::vector<std::byte> encode_node(const Node& node) const;
  [[nodiscard]] Result<Node> decode_node(std::span<const std::byte> page) const;

  // ---- cache -----------------------------------------------------------
  struct CacheEntry {
    Node node;
    bool dirty = false;
    std::list<std::uint64_t>::iterator lru_it;
  };

  /// Fetches a node (through the cache); the reference stays valid until
  /// the next fetch/put (callers copy what they need across fetches).
  [[nodiscard]] Result<Node*> fetch(std::uint64_t page_offset);
  Node* put(std::uint64_t page_offset, Node node, bool dirty);
  void mark_dirty(std::uint64_t page_offset);
  [[nodiscard]] Status evict_if_needed();
  [[nodiscard]] Status write_node(std::uint64_t page_offset, const Node& node);

  std::uint64_t allocate_page();
  std::uint64_t allocate_chunk();

  [[nodiscard]] Status write_header();
  [[nodiscard]] Status read_header();

  /// Recursive insert; on child split returns the separator key + new
  /// right-sibling page via `split_key` / `split_page`.
  [[nodiscard]] Status insert_into(std::uint64_t page_offset,
                     std::span<const std::uint64_t> key, std::uint64_t value,
                     bool* did_split, std::vector<std::uint64_t>* split_key,
                     std::uint64_t* split_page);

  std::unique_ptr<pfs::Storage> storage_;
  Options options_;
  std::size_t rank_ = 0;
  std::uint64_t chunk_bytes_ = 0;
  std::uint64_t chunk_count_ = 0;
  std::uint64_t root_ = 0;
  std::uint64_t tail_ = 0;  ///< next free file offset

  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  Stats stats_;
};

}  // namespace drx::baselines
