#include "codec/codec.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace drx::codec {

namespace {

// ---- RLE: element-granular PackBits ------------------------------------
//
// Stream of tokens. Token t (u8):
//   t & 0x80   -> run: (t & 0x7F) + 2 copies of the next element
//                 (one element payload; counts 2..129)
//   otherwise  -> literal: t + 1 verbatim elements follow (1..128)
// Decoded element count must equal the chunk exactly; the stream must
// end exactly at its last payload byte.

constexpr std::size_t kRunMax = 129;   // (0x7F) + 2
constexpr std::size_t kLitMax = 128;   // 0x7F + 1

std::size_t rle_encode(std::span<const std::byte> raw, std::size_t w,
                       std::span<std::byte> out) noexcept {
  const std::size_t n = raw.size() / w;
  const std::size_t cap = raw.size();  // must beat raw or we store raw
  const std::byte* src = raw.data();
  std::size_t pos = 0;

  std::size_t i = 0;
  while (i < n) {
    // Length of the run of equal elements starting at i.
    std::size_t run = 1;
    while (i + run < n && run < kRunMax &&
           std::memcmp(src + i * w, src + (i + run) * w, w) == 0) {
      ++run;
    }
    if (run >= 2) {
      if (pos + 1 + w > cap) return 0;
      out[pos++] = static_cast<std::byte>(0x80 | (run - 2));
      std::memcpy(out.data() + pos, src + i * w, w);
      pos += w;
      i += run;
      continue;
    }
    // Literal block: extend until the next >=2 run or the cap.
    std::size_t lit = 1;
    while (i + lit < n && lit < kLitMax) {
      if (i + lit + 1 < n &&
          std::memcmp(src + (i + lit) * w, src + (i + lit + 1) * w, w) == 0) {
        break;
      }
      ++lit;
    }
    if (pos + 1 + lit * w > cap) return 0;
    out[pos++] = static_cast<std::byte>(lit - 1);
    std::memcpy(out.data() + pos, src + i * w, lit * w);
    pos += lit * w;
    i += lit;
  }
  return pos >= cap ? 0 : pos;
}

Status rle_decode(std::span<const std::byte> stored, std::size_t w,
                  std::span<std::byte> raw) noexcept {
  const std::size_t n = raw.size() / w;
  std::size_t pos = 0;
  std::size_t written = 0;  // elements
  while (pos < stored.size()) {
    const auto t = static_cast<std::uint8_t>(stored[pos++]);
    if (t & 0x80) {
      const std::size_t count = static_cast<std::size_t>(t & 0x7F) + 2;
      if (pos + w > stored.size() || written + count > n) {
        return Status(ErrorCode::kCorrupt, "rle: run overflows chunk");
      }
      const std::byte* elem = stored.data() + pos;
      pos += w;
      for (std::size_t r = 0; r < count; ++r) {
        std::memcpy(raw.data() + (written + r) * w, elem, w);
      }
      written += count;
    } else {
      const std::size_t count = static_cast<std::size_t>(t) + 1;
      if (pos + count * w > stored.size() || written + count > n) {
        return Status(ErrorCode::kCorrupt, "rle: literal overflows chunk");
      }
      std::memcpy(raw.data() + written * w, stored.data() + pos, count * w);
      pos += count * w;
      written += count;
    }
  }
  if (written != n) {
    return Status(ErrorCode::kCorrupt, "rle: stream ends short of chunk");
  }
  return Status::ok();
}

// ---- BitPack: frame-of-reference bit packing ---------------------------
//
// Layout: u8 width_bits, then min as `w` little-endian bytes (signed
// interpretation), then ceil(n * width / 8) bytes of (v - min) deltas
// packed LSB-first. Applicable to 4- and 8-byte elements; for wider
// or floating data the signed frame usually yields width == 8*w and
// the encoder reports no gain. Lossless for arbitrary bit patterns.

std::uint64_t load_le(const std::byte* p, std::size_t w) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, w);  // host is little-endian in this project's CI
  if (w == 4) {
    // Sign-extend so the signed frame-of-reference stays tight.
    v = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
  }
  return v;
}

void store_le(std::byte* p, std::uint64_t v, std::size_t w) noexcept {
  std::memcpy(p, &v, w);
}

/// Widest supported frame: keeps every shift below 64 so a plain u64
/// bit accumulator suffices (-Wpedantic bans __int128). A frame wider
/// than this could save at most ~12% — the encoder stores raw instead.
constexpr unsigned bitpack_max_width(std::size_t w) noexcept {
  return w == 4 ? 32u : 56u;
}

std::size_t bitpack_encode(std::span<const std::byte> raw, std::size_t w,
                           std::span<std::byte> out) noexcept {
  if (w != 4 && w != 8) return 0;
  const std::size_t n = raw.size() / w;
  if (n == 0) return 0;
  std::int64_t mn = static_cast<std::int64_t>(load_le(raw.data(), w));
  std::int64_t mx = mn;
  for (std::size_t i = 1; i < n; ++i) {
    const auto v = static_cast<std::int64_t>(load_le(raw.data() + i * w, w));
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  const std::uint64_t range =
      static_cast<std::uint64_t>(mx) - static_cast<std::uint64_t>(mn);
  const unsigned width =
      range == 0 ? 0u : static_cast<unsigned>(std::bit_width(range));
  if (width > bitpack_max_width(w)) return 0;
  const std::size_t packed = (n * width + 7) / 8;
  const std::size_t total = 1 + w + packed;
  if (total >= raw.size()) return 0;

  out[0] = static_cast<std::byte>(width);
  store_le(out.data() + 1, static_cast<std::uint64_t>(mn), w);
  std::size_t pos = 1 + w;
  std::uint64_t acc = 0;
  unsigned bits = 0;  // < 8 between values; bits + width < 64 always
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t delta = load_le(raw.data() + i * w, w) -
                                static_cast<std::uint64_t>(mn);
    acc |= delta << bits;
    bits += width;
    while (bits >= 8) {
      out[pos++] = static_cast<std::byte>(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) {
    out[pos++] = static_cast<std::byte>(static_cast<std::uint8_t>(acc));
  }
  return pos;
}

Status bitpack_decode(std::span<const std::byte> stored, std::size_t w,
                      std::span<std::byte> raw) noexcept {
  if (w != 4 && w != 8) {
    return Status(ErrorCode::kCorrupt, "bitpack: bad element width");
  }
  const std::size_t n = raw.size() / w;
  if (stored.size() < 1 + w) {
    return Status(ErrorCode::kCorrupt, "bitpack: truncated header");
  }
  const unsigned width = static_cast<std::uint8_t>(stored[0]);
  if (width > bitpack_max_width(w)) {
    return Status(ErrorCode::kCorrupt, "bitpack: implausible bit width");
  }
  const std::size_t packed = (n * width + 7) / 8;
  if (stored.size() != 1 + w + packed) {
    return Status(ErrorCode::kCorrupt, "bitpack: payload size mismatch");
  }
  std::uint64_t mn = 0;
  std::memcpy(&mn, stored.data() + 1, w);
  const std::uint64_t mask = width == 0 ? 0 : ((1ULL << width) - 1);
  std::size_t pos = 1 + w;
  std::uint64_t acc = 0;
  unsigned bits = 0;  // < 8 between values; width <= 56 keeps shifts < 64
  for (std::size_t i = 0; i < n; ++i) {
    while (bits < width) {
      acc |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(stored[pos++]))
             << bits;
      bits += 8;
    }
    const std::uint64_t delta = acc & mask;
    acc >>= width;
    bits -= width;
    store_le(raw.data() + i * w, mn + delta, w);
  }
  // Canonical streams zero-pad the final byte; anything else is damage.
  if (acc != 0) {
    return Status(ErrorCode::kCorrupt, "bitpack: nonzero trailing bits");
  }
  return Status::ok();
}

std::atomic<int> g_default_codec{-1};  // -1 = not yet read from the env

CodecId codec_from_env() noexcept {
  const char* env = std::getenv("DRX_COMPRESS");
  if (env == nullptr) return CodecId::kNone;
  const auto parsed = parse_codec(env);
  return parsed.value_or(CodecId::kNone);
}

}  // namespace

std::optional<CodecId> parse_codec(std::string_view name) noexcept {
  if (name == "off" || name == "none" || name == "0") return CodecId::kNone;
  if (name == "rle" || name == "on" || name == "1") return CodecId::kRle;
  if (name == "bitpack") return CodecId::kBitPack;
  return std::nullopt;
}

CodecId default_codec() noexcept {
  int v = g_default_codec.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(codec_from_env());
    g_default_codec.store(v, std::memory_order_relaxed);
  }
  return static_cast<CodecId>(v);
}

void set_default_codec(CodecId c) noexcept {
  g_default_codec.store(static_cast<int>(c), std::memory_order_relaxed);
}

std::size_t max_encoded_bytes(std::size_t raw_bytes,
                              std::size_t /*element_bytes*/) noexcept {
  // Encoders bail out ("no gain") before ever exceeding the raw size,
  // so a raw-sized scratch buffer is always enough.
  return raw_bytes;
}

std::size_t encode(CodecId codec, std::span<const std::byte> raw,
                   std::size_t element_bytes, std::span<std::byte> out) noexcept {
  if (element_bytes == 0 || raw.size() % element_bytes != 0) return 0;
  if (out.size() < max_encoded_bytes(raw.size(), element_bytes)) return 0;
  switch (codec) {
    case CodecId::kNone: return 0;
    case CodecId::kRle: return rle_encode(raw, element_bytes, out);
    case CodecId::kBitPack: return bitpack_encode(raw, element_bytes, out);
  }
  return 0;
}

Status decode(CodecId codec, std::span<const std::byte> stored,
              std::size_t element_bytes, std::span<std::byte> raw) noexcept {
  if (element_bytes == 0 || raw.size() % element_bytes != 0) {
    return Status(ErrorCode::kInvalidArgument, "decode: bad element width");
  }
  switch (codec) {
    case CodecId::kNone:
      if (stored.size() != raw.size()) {
        return Status(ErrorCode::kCorrupt, "identity: stored size mismatch");
      }
      std::memcpy(raw.data(), stored.data(), stored.size());
      return Status::ok();
    case CodecId::kRle: return rle_decode(stored, element_bytes, raw);
    case CodecId::kBitPack: return bitpack_decode(stored, element_bytes, raw);
  }
  return Status(ErrorCode::kCorrupt, "unknown codec id");
}

}  // namespace drx::codec
