// Per-chunk compression codecs (ROADMAP item 4).
//
// Chunks are compressed independently so the axial mapping F* still
// resolves any chunk without touching its neighbours; the per-chunk
// stored-size/offset table lives in `core::Metadata`, not here. This
// module is deliberately low in the layering (util only): it knows
// nothing about files, caches or metrics — callers time and count.
//
// Two real codecs plus the identity fallback:
//   * kRle     — element-granular PackBits-style run-length encoding.
//                Works for every element width; wins big on the
//                zero-heavy / piecewise-constant grids scientific
//                arrays are full of.
//   * kBitPack — frame-of-reference bit packing for integer dtypes:
//                store min(v) once, then (v - min) packed at the
//                minimal bit width. Not applicable to float/complex.
//   * kNone    — identity. Always available; `encode` falls back to it
//                (by returning 0) whenever a codec cannot beat raw.
//
// Encoders never expand: if the encoded form would be >= the raw size
// the encoder reports "no gain" and the caller stores the chunk raw
// with a per-chunk kNone tag. Decoders validate exhaustively and
// return kCorrupt on any malformed stream — compressed data crossing a
// PFS is still just bytes on disk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "util/error.hpp"

namespace drx::codec {

enum class CodecId : std::uint8_t {
  kNone = 0,     ///< identity: stored bytes are the raw chunk
  kRle = 1,      ///< element-granular run-length encoding
  kBitPack = 2,  ///< frame-of-reference bit packing (integer elements)
};

[[nodiscard]] constexpr bool valid_codec(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(CodecId::kBitPack);
}

[[nodiscard]] constexpr std::string_view codec_name(CodecId c) noexcept {
  switch (c) {
    case CodecId::kNone: return "none";
    case CodecId::kRle: return "rle";
    case CodecId::kBitPack: return "bitpack";
  }
  return "?";
}

/// Parses a codec name as used by `DRX_COMPRESS` and tool flags.
/// Accepts "off"/"none"/"0" (identity), "rle"/"on"/"1" (RLE is the
/// default real codec) and "bitpack". Unknown names -> nullopt.
[[nodiscard]] std::optional<CodecId> parse_codec(std::string_view name) noexcept;

/// Reads `DRX_COMPRESS` once per process; unset or unparsable -> kNone
/// so compression stays strictly opt-in. `set_default_codec` overrides
/// programmatically (tests, benches).
[[nodiscard]] CodecId default_codec() noexcept;
void set_default_codec(CodecId c) noexcept;

/// Upper bound on the encoded size of a raw buffer of `raw_bytes` bytes
/// with `element_bytes`-wide elements, for sizing scratch buffers. The
/// bound holds for every codec.
[[nodiscard]] std::size_t max_encoded_bytes(std::size_t raw_bytes,
                                            std::size_t element_bytes) noexcept;

/// Encodes `raw` (a whole chunk, element width `element_bytes`, which
/// must divide raw.size()) into `out` (>= max_encoded_bytes). Returns
/// the encoded size, or 0 when the codec is inapplicable to this
/// element width or cannot beat the raw size — the caller then stores
/// the chunk raw, tagged kNone. `codec` == kNone always returns 0.
/// Pure function of its inputs; safe to call concurrently.
[[nodiscard]] std::size_t encode(CodecId codec, std::span<const std::byte> raw,
                                 std::size_t element_bytes,
                                 std::span<std::byte> out) noexcept;

/// Decodes `stored` into exactly `raw.size()` bytes. `codec` is the
/// per-chunk tag actually stored (kNone -> plain copy, sizes must
/// match). Every structural violation — truncated stream, counts not
/// summing to the chunk, trailing garbage, implausible bit widths —
/// returns kCorrupt without writing out of bounds. Safe to call
/// concurrently.
[[nodiscard]] Status decode(CodecId codec, std::span<const std::byte> stored,
                            std::size_t element_bytes,
                            std::span<std::byte> raw) noexcept;

}  // namespace drx::codec
