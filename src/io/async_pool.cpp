#include "io/async_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "io/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drx::io {

namespace {

const obs::MetricId kSubmitted = obs::counter_id("io.pool.submitted");
const obs::MetricId kCompleted = obs::counter_id("io.pool.completed");
const obs::MetricId kInline = obs::counter_id("io.pool.inline_runs");
const obs::MetricId kFailed = obs::counter_id("io.pool.failed");
const obs::MetricId kDrains = obs::counter_id("io.pool.drains");
const obs::MetricId kBackgroundSubmitted =
    obs::counter_id("io.pool.background_submitted");
const obs::MetricId kQueueDepth = obs::histogram_id("io.pool.queue_depth");
const obs::MetricId kJobUs = obs::histogram_id("io.pool.job_us");

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(v);
}

// Overrides: the sentinel means "defer to the environment".
constexpr int kThreadsFromEnv = -1;
std::atomic<int> g_io_threads_override{kThreadsFromEnv};
std::atomic<std::uint64_t> g_prefetch_override{kPrefetchFromEnv};
std::atomic<CacheAdmit> g_cache_admit_override{CacheAdmit::kFromEnv};
std::atomic<int> g_cache_shards_override{-1};
std::atomic<int> g_cache_fast_reads_override{-1};
std::atomic<std::uint64_t> g_serve_queue_depth_override{0};

}  // namespace

int io_threads() noexcept {
  const int o = g_io_threads_override.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  // Read once: the engine treats the environment as process-constant.
  static const int from_env = [] {
    const auto v = env_u64("DRX_IO_THREADS", 0);
    return static_cast<int>(v > 64 ? 64 : v);
  }();
  return from_env;
}

std::uint64_t prefetch_depth() noexcept {
  const std::uint64_t o = g_prefetch_override.load(std::memory_order_relaxed);
  if (o != kPrefetchFromEnv) return o;
  static const std::uint64_t from_env = env_u64("DRX_PREFETCH_DEPTH", 0);
  return from_env;
}

void set_io_threads(int threads) noexcept {
  g_io_threads_override.store(threads < 0 ? kThreadsFromEnv : threads,
                              std::memory_order_relaxed);
}

void set_prefetch_depth(std::uint64_t depth) noexcept {
  g_prefetch_override.store(depth, std::memory_order_relaxed);
}

CacheAdmit cache_admit() noexcept {
  const CacheAdmit o = g_cache_admit_override.load(std::memory_order_relaxed);
  if (o != CacheAdmit::kFromEnv) return o;
  static const CacheAdmit from_env = [] {
    const char* raw = std::getenv("DRX_CACHE_ADMIT");
    if (raw == nullptr || *raw == '\0') return CacheAdmit::kAuto;
    const std::string_view v(raw);
    if (v == "always") return CacheAdmit::kAlways;
    if (v == "never") return CacheAdmit::kNever;
    return CacheAdmit::kAuto;  // "auto" and anything unrecognized
  }();
  return from_env;
}

void set_cache_admit(CacheAdmit mode) noexcept {
  g_cache_admit_override.store(mode, std::memory_order_relaxed);
}

int cache_shards() noexcept {
  const int o = g_cache_shards_override.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  static const int from_env = [] {
    const auto v = env_u64("DRX_CACHE_SHARDS", 0);
    return static_cast<int>(v > 64 ? 64 : v);
  }();
  return from_env;
}

void set_cache_shards(int shards) noexcept {
  g_cache_shards_override.store(shards < 0 ? -1 : shards,
                                std::memory_order_relaxed);
}

bool cache_fast_reads() noexcept {
  const int o = g_cache_fast_reads_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool from_env = env_u64("DRX_CACHE_FAST_READS", 1) != 0;
  return from_env;
}

void set_cache_fast_reads(int mode) noexcept {
  g_cache_fast_reads_override.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                                    std::memory_order_relaxed);
}

std::size_t serve_queue_depth() noexcept {
  const std::uint64_t o =
      g_serve_queue_depth_override.load(std::memory_order_relaxed);
  if (o != 0) return static_cast<std::size_t>(o);
  static const std::size_t from_env = [] {
    const std::uint64_t v = env_u64("DRX_SERVE_QUEUE_DEPTH", 128);
    return static_cast<std::size_t>(v == 0 ? 128 : v);
  }();
  return from_env;
}

void set_serve_queue_depth(std::size_t depth) noexcept {
  g_serve_queue_depth_override.store(depth, std::memory_order_relaxed);
}

AsyncIoPool::AsyncIoPool(const Options& options) : options_(options) {
  DRX_CHECK(options.queue_capacity >= 1);
  const int n = options.threads < 0 ? 0 : options.threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncIoPool::~AsyncIoPool() {
  drain();
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void AsyncIoPool::finish_one(const Status& status) {
  ++stats_.completed;
  obs::registry().counter(kCompleted).add();
  if (!status.is_ok()) {
    ++stats_.failed;
    obs::registry().counter(kFailed).add();
  }
}

void AsyncIoPool::submit(const obs::OpContext& ctx, Job job, Completion done,
                         JobClass cls) {
  DRX_CHECK(job != nullptr);
  if (!async()) {
    // Inline synchronous path: same observable order as the legacy code —
    // the work (and its completion) happens before submit() returns. No
    // flow events (there is no thread handoff to draw an arrow across),
    // but the context is still installed so stage attribution works when
    // a caller submits on behalf of another thread's op.
    {
      util::MutexLock lock(mu_);
      ++stats_.submitted;
      ++stats_.inline_runs;
    }
    obs::registry().counter(kSubmitted).add();
    obs::registry().counter(kInline).add();
    Status status;
    {
      obs::OpRestore restore(ctx);
      status = job();
    }
    {
      util::MutexLock lock(mu_);
      finish_one(status);
    }
    if (done) done(status);
    return;
  }
  // Submit side of the causal arrow ("s" flow phase) and the start of the
  // queue-wait clock. Guarded so the disabled-everything path stays free
  // of clock reads.
  std::uint64_t flow_id = 0;
  if (obs::trace_enabled() || obs::flight_enabled()) {
    flow_id = obs::next_flow_id();
    obs::record_flow_out(flow_id, ctx);
  }
  util::MutexLock lock(mu_);
  {
    // Backpressure (queue at capacity) is queue-wait time from the op's
    // point of view: the op is stalled on the async engine.
    const std::uint64_t wait_start =
        ctx.op != 0 ? obs::trace_now_ns() : 0;
    space_cv_.wait(lock, [this] {
      mu_.assert_held();
      return queued_locked() < options_.queue_capacity;
    });
    if (ctx.op != 0) {
      obs::add_stage_ns(ctx, obs::Stage::kQueueWait,
                        obs::trace_now_ns() - wait_start);
    }
  }
  const std::uint64_t enqueue_ns = ctx.op != 0 ? obs::trace_now_ns() : 0;
  queues_[static_cast<std::size_t>(cls)].push_back(
      Task{std::move(job), std::move(done), ctx, flow_id, enqueue_ns});
  ++stats_.submitted;
  if (cls == JobClass::kBackground) {
    ++stats_.background_submitted;
    obs::registry().counter(kBackgroundSubmitted).add();
  }
  obs::registry().counter(kSubmitted).add();
  obs::registry().histogram(kQueueDepth).observe(queued_locked());
  lock.unlock();
  work_cv_.notify_one();
}

std::future<Status> AsyncIoPool::submit_with_future(const obs::OpContext& ctx,
                                                    Job job, JobClass cls) {
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> future = promise->get_future();
  submit(ctx, std::move(job),
         [promise](const Status& s) { promise->set_value(s); }, cls);
  return future;
}

void AsyncIoPool::drain() {
  obs::registry().counter(kDrains).add();
  util::MutexLock lock(mu_);
  idle_cv_.wait(lock, [this] {
    mu_.assert_held();
    return queued_locked() == 0 && running_ == 0;
  });
}

std::size_t AsyncIoPool::queue_depth() const {
  util::MutexLock lock(mu_);
  return queued_locked();
}

AsyncIoPool::Stats AsyncIoPool::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

std::size_t AsyncIoPool::pick_queue_locked() {
  const std::size_t urgent = 0;
  const std::size_t background = 1;
  if (queues_[urgent].empty()) return background;
  if (queues_[background].empty()) return urgent;
  // Both classes waiting: urgent first, except every 4th dispatch serves
  // the background queue so speculation keeps making progress under a
  // continuous urgent stream (anti-starvation, docs/SERVING.md).
  return (dispatches_ % 4 == 3) ? background : urgent;
}

void AsyncIoPool::worker_loop() {
  for (;;) {
    util::MutexLock lock(mu_);
    work_cv_.wait(lock, [this] {
      mu_.assert_held();
      return stop_ || queued_locked() != 0;
    });
    if (queued_locked() == 0) return;  // stop_ and nothing left to do
    std::deque<Task>& queue = queues_[pick_queue_locked()];
    ++dispatches_;
    Task task = std::move(queue.front());
    queue.pop_front();
    ++running_;
    lock.unlock();
    space_cv_.notify_one();

    // Consume side of the causal arrow: close the queue-wait clock, emit
    // the "f" flow phase, and run the job under the submitter's OpContext
    // so everything it touches attributes to the originating op.
    if (task.enqueue_ns != 0) {
      obs::add_stage_ns(task.ctx, obs::Stage::kQueueWait,
                        obs::trace_now_ns() - task.enqueue_ns);
    }
    if (task.flow_id != 0 &&
        (obs::trace_enabled() || obs::flight_enabled())) {
      obs::record_flow_in(task.flow_id, task.ctx);
    }
    Status status;
    {
      obs::OpRestore restore(task.ctx);
      obs::ScopedSpan span("io.pool.job", "io");
      obs::ScopedTimer timer(kJobUs);
      status = task.job();
    }
    if (task.done) task.done(status);

    lock.lock();
    --running_;
    finish_one(status);
    const bool idle = queued_locked() == 0 && running_ == 0;
    lock.unlock();
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace drx::io
