// Runtime knobs for the async chunk I/O engine (docs/ASYNC_IO.md).
//
// Both knobs are read from the environment once at startup and can be
// overridden programmatically (tests and benches flip them without
// re-exec'ing). The zero values select the fully synchronous legacy
// paths, which are the defaults: async I/O is opt-in.
//
//   DRX_IO_THREADS     worker threads per AsyncIoPool consumer
//                      (0 = no threads; every submission runs inline,
//                      reproducing the pre-async synchronous semantics)
//   DRX_PREFETCH_DEPTH chunks of speculative read-ahead issued when a
//                      cache detects a sequential miss run (0 = off;
//                      only active when DRX_IO_THREADS > 0)
//   DRX_CACHE_ADMIT    ChunkCache admission policy for element-granular
//                      misses (docs/PERFORMANCE.md): `auto` (default) uses
//                      the ghost/probation filter so scan/random patterns
//                      bypass the cache, `always` restores unconditional
//                      admission, `never` bypasses every element miss
//   DRX_CACHE_SHARDS   ChunkCache lock shards (docs/SERVING.md). 0 (the
//                      default) lets each consumer pick: a plain
//                      ChunkCache uses 1 shard (legacy single-lock
//                      semantics), drx::serve::Server uses 8. Rounded
//                      down to a power of two, capped at 64.
//   DRX_CACHE_FAST_READS  lock-free resident-read fast path (1 = on, the
//                      default; 0 = every read takes the shard mutex —
//                      the pre-sharding behavior, kept as an ablation
//                      knob for benches)
//   DRX_SERVE_QUEUE_DEPTH  bound of the drx::serve submission queue
//                      (default 128); a session submitting into a full
//                      queue blocks until a worker drains it
#pragma once

#include <cstddef>
#include <cstdint>

namespace drx::io {

/// Worker-thread count consumers should size their pools with.
[[nodiscard]] int io_threads() noexcept;

/// Read-ahead depth in chunks for sequential-scan prefetching.
[[nodiscard]] std::uint64_t prefetch_depth() noexcept;

/// ChunkCache admission policy for element-granular misses.
enum class CacheAdmit {
  kAuto,    ///< ghost/probation filter: admit on demonstrated reuse
  kAlways,  ///< legacy behavior: every element miss faults its chunk
  kNever,   ///< every element miss bypasses to direct element I/O
  kFromEnv  ///< sentinel for set_cache_admit(): defer to DRX_CACHE_ADMIT
};

/// Admission policy from DRX_CACHE_ADMIT (or its test override).
[[nodiscard]] CacheAdmit cache_admit() noexcept;

/// ChunkCache lock-shard count from DRX_CACHE_SHARDS. 0 = unset: the
/// consumer chooses its own default (docs/SERVING.md).
[[nodiscard]] int cache_shards() noexcept;

/// Lock-free resident-read fast path from DRX_CACHE_FAST_READS
/// (default on).
[[nodiscard]] bool cache_fast_reads() noexcept;

/// drx::serve submission-queue bound from DRX_SERVE_QUEUE_DEPTH
/// (default 128, never 0).
[[nodiscard]] std::size_t serve_queue_depth() noexcept;

/// Programmatic overrides (tests/benches). Negative `threads` restores
/// the environment-derived value; so do `kPrefetchFromEnv` for depth,
/// `CacheAdmit::kFromEnv` for the admission policy, negative `shards` /
/// `fast_reads`, and 0 for the serve queue depth.
inline constexpr std::uint64_t kPrefetchFromEnv = ~std::uint64_t{0};
void set_io_threads(int threads) noexcept;
void set_prefetch_depth(std::uint64_t depth) noexcept;
void set_cache_admit(CacheAdmit mode) noexcept;
void set_cache_shards(int shards) noexcept;
void set_cache_fast_reads(int mode) noexcept;
void set_serve_queue_depth(std::size_t depth) noexcept;

}  // namespace drx::io
