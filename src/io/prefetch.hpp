// Prefetch hint plumbing between layers that *know* future access
// patterns (zone reads, box scans) and layers that *hold* chunk frames
// (ChunkCache). The sink interface lives here, below both, so core can
// forward hints without a dependency cycle.
#pragma once

#include <cstdint>

namespace drx::io {

/// Receiver of speculative chunk-read hints. Implementations must treat
/// hints as advisory: dropping one is always legal, and prefetch_range
/// must never block on the I/O it starts.
class PrefetchSink {
 public:
  virtual ~PrefetchSink() = default;

  /// Hints that linear chunk addresses [first, first + count) are about
  /// to be read. Thread-safe.
  virtual void prefetch_range(std::uint64_t first, std::uint64_t count) = 0;
};

}  // namespace drx::io
