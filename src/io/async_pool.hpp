// Background I/O engine for the DRX stack (docs/ASYNC_IO.md).
//
// A small fixed pool of worker threads servicing a bounded FIFO of
// Status-returning jobs. Consumers (ChunkCache write-behind/read-ahead,
// drxmp zone-read pipelining, mpio aggregator fan-out) submit closures
// and either wait on a future, register a completion callback, or use
// drain() as a barrier.
//
// Two properties the rest of the stack leans on:
//  - threads == 0 degrades to *inline* execution: submit() runs the job
//    (and its completion) on the calling thread before returning, so the
//    synchronous legacy code paths and the async ones share one shape.
//  - the submission queue is bounded: a fast producer blocks in submit()
//    rather than queueing unbounded dirty buffers (write-behind
//    backpressure). Corollary: a job must never submit to its own pool,
//    or a full queue deadlocks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "obs/opctx.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace drx::io {

class AsyncIoPool {
 public:
  using Job = std::function<Status()>;
  using Completion = std::function<void(const Status&)>;

  struct Options {
    int threads = 0;                  ///< 0 = inline synchronous execution
    std::size_t queue_capacity = 256; ///< max jobs waiting (not running)
  };

  /// Two-class dispatch fairness (docs/SERVING.md): kUrgent jobs (demand
  /// reads/writes, write-behind, serve sessions) are dispatched ahead of
  /// kBackground jobs (speculative read-ahead, serve prefetch hints), but
  /// every 4th dispatch takes the oldest background job so a continuous
  /// urgent stream cannot starve speculation forever.
  enum class JobClass : std::uint8_t { kUrgent = 0, kBackground = 1 };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t inline_runs = 0;  ///< jobs executed on the caller's thread
    std::uint64_t failed = 0;       ///< jobs whose Status was an error
    std::uint64_t background_submitted = 0;  ///< JobClass::kBackground jobs
  };

  explicit AsyncIoPool(const Options& options);
  ~AsyncIoPool();  ///< drains outstanding jobs, then joins the workers
  AsyncIoPool(const AsyncIoPool&) = delete;
  AsyncIoPool& operator=(const AsyncIoPool&) = delete;

  /// True when worker threads exist (threads > 0 at construction).
  [[nodiscard]] bool async() const noexcept { return !workers_.empty(); }
  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues `job`; `done` (optional) runs right after it on the same
  /// thread. Blocks while the queue is at capacity. Inline mode runs
  /// everything before returning.
  ///
  /// `ctx` is the submitter's causal context (obs::current_op() at the
  /// call site — lint_drx enforces propagation): it is restored on the
  /// worker thread so stage attribution follows the op, queue time is
  /// charged to Stage::kQueueWait, and a flow-event pair links the submit
  /// to the dequeue in trace/flight output. Pass obs::OpContext{} only
  /// where no op can be in flight (lint: allow(pool-submit-opctx)).
  void submit(const obs::OpContext& ctx, Job job, Completion done = nullptr,
              JobClass cls = JobClass::kUrgent);

  /// submit() variant yielding the job's Status through a future.
  std::future<Status> submit_with_future(const obs::OpContext& ctx, Job job,
                                         JobClass cls = JobClass::kUrgent);

  /// Barrier: returns once every job submitted before the call (queued or
  /// running) has completed.
  void drain();

  /// Queued-but-not-yet-running jobs right now.
  [[nodiscard]] std::size_t queue_depth() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Task {
    Job job;
    Completion done;
    obs::OpContext ctx;            ///< restored on the worker for the job
    std::uint64_t flow_id = 0;     ///< 0 = no flow event pair for this task
    std::uint64_t enqueue_ns = 0;  ///< 0 = queue wait not attributed
  };

  void worker_loop();
  void finish_one(const Status& status) DRX_REQUIRES(mu_);
  [[nodiscard]] std::size_t queued_locked() const DRX_REQUIRES(mu_) {
    return queues_[0].size() + queues_[1].size();
  }
  /// Picks the queue the next dispatch drains from (fairness policy).
  [[nodiscard]] std::size_t pick_queue_locked() DRX_REQUIRES(mu_);

  const Options options_;
  mutable util::Mutex mu_;
  util::CondVar work_cv_;   ///< workers: queue non-empty or stop
  util::CondVar space_cv_;  ///< producers: queue below capacity
  util::CondVar idle_cv_;   ///< drain(): everything completed
  /// Indexed by JobClass: [0] urgent, [1] background.
  std::deque<Task> queues_[2] DRX_GUARDED_BY(mu_);
  std::uint64_t dispatches_ DRX_GUARDED_BY(mu_) = 0;  ///< fairness clock
  std::size_t running_ DRX_GUARDED_BY(mu_) = 0;  ///< jobs executing on workers
  bool stop_ DRX_GUARDED_BY(mu_) = false;
  Stats stats_ DRX_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

}  // namespace drx::io
