// Derived datatypes (MPI_Type_contiguous / vector / indexed / hindexed /
// create_subarray) and pack/unpack.
//
// A Datatype is represented eagerly in flattened form: a sorted,
// coalesced list of (byte offset, byte length) blocks describing one item,
// plus the item extent (the stride applied between consecutive items of a
// count > 1 transfer, and between consecutive tiles of a file view).
//
// Eager flattening trades construction cost for trivially correct pack,
// unpack and file-view logic; DRX-MP builds datatypes at chunk granularity
// (thousands of blocks, not billions), so the trade is a good one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace drx::simpi {

/// Memory layout order for subarray types (MPI_ORDER_C / MPI_ORDER_FORTRAN).
enum class Order { kC, kFortran };

struct Block {
  std::uint64_t offset = 0;  ///< bytes from the item origin
  std::uint64_t length = 0;  ///< bytes

  friend bool operator==(const Block&, const Block&) = default;
};

class Datatype {
 public:
  /// Contiguous run of `n` raw bytes (the basic type; MPI_BYTE xN).
  static Datatype bytes(std::uint64_t n);

  /// `count` consecutive copies of `base` (MPI_Type_contiguous).
  static Datatype contiguous(std::uint64_t count, const Datatype& base);

  /// `count` blocks of `blocklen` base items, regularly strided by
  /// `stride` base extents (MPI_Type_vector).
  static Datatype vector(std::uint64_t count, std::uint64_t blocklen,
                         std::uint64_t stride, const Datatype& base);

  /// Irregular blocks: block i has blocklens[i] base items displaced by
  /// displs[i] base extents (MPI_Type_indexed). Displacements need not be
  /// monotonic, but blocks must not overlap.
  static Datatype indexed(std::span<const std::uint64_t> blocklens,
                          std::span<const std::uint64_t> displs,
                          const Datatype& base);

  /// Like indexed, but displacements are in bytes (MPI_Type_create_hindexed).
  static Datatype hindexed(std::span<const std::uint64_t> blocklens,
                           std::span<const std::uint64_t> byte_displs,
                           const Datatype& base);

  /// k-dimensional subarray of a containing array (MPI_Type_create_subarray):
  /// the item extent is the full array, the payload is the sub-block at
  /// `starts` of shape `subsizes`.
  static Datatype subarray(std::span<const std::uint64_t> sizes,
                           std::span<const std::uint64_t> subsizes,
                           std::span<const std::uint64_t> starts, Order order,
                           const Datatype& base);

  /// Overrides the extent (MPI_Type_create_resized).
  [[nodiscard]] Datatype resized(std::uint64_t new_extent) const;

  /// Total payload bytes of one item (MPI_Type_size).
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Stride between consecutive items (MPI_Type_get_extent).
  [[nodiscard]] std::uint64_t extent() const noexcept { return extent_; }

  /// Flattened blocks of one item in declaration (type-map) order, with
  /// consecutive physically-adjacent runs merged. Declaration order is
  /// semantic: pack/unpack traverse blocks in this order.
  [[nodiscard]] std::span<const Block> blocks() const noexcept {
    return blocks_;
  }

  /// True when block offsets are non-decreasing in declaration order —
  /// the requirement MPI places on file-view filetypes.
  [[nodiscard]] bool is_monotonic() const noexcept;

  /// Gathers `count` items starting at `src` into `out` (appended), in
  /// canonical (offset-sorted) order.
  void pack(const std::byte* src, std::uint64_t count,
            std::vector<std::byte>& out) const;

  /// Scatters packed payload back into `dst`. `in` must hold exactly
  /// `count * size()` bytes.
  void unpack(std::span<const std::byte> in, std::uint64_t count,
              std::byte* dst) const;

  /// Number of bytes the memory region of `count` items spans (distance
  /// from item 0 origin to the end of the last byte touched).
  [[nodiscard]] std::uint64_t span_bytes(std::uint64_t count) const;

 private:
  Datatype(std::vector<Block> blocks, std::uint64_t extent);

  static void normalize(std::vector<Block>& blocks);

  /// True when one item is a single gap-free block (payload == extent).
  /// Builders exploit this to emit one Block per *run* instead of one per
  /// base item — the run-granular fast path of docs/PERFORMANCE.md.
  [[nodiscard]] bool is_dense() const noexcept {
    return blocks_.size() == 1 && blocks_[0].offset == 0 &&
           blocks_[0].length == extent_;
  }

  std::vector<Block> blocks_;
  std::uint64_t extent_ = 0;
  std::uint64_t size_ = 0;
};

}  // namespace drx::simpi
