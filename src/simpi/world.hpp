// Internal shared state of a simpi "job": per-rank mailboxes, barrier
// generations and context-id allocation.
//
// simpi emulates an MPI-2 job with one std::thread per rank. User code
// written against simpi must follow message-passing discipline (no shared
// mutable state between ranks other than through simpi calls); the library
// itself uses the shared address space only inside this file and in the
// RMA window implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace drx::simpi {

/// Wildcards mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

namespace detail {

/// An in-flight point-to-point message (buffered-send semantics: the
/// payload is copied into the mailbox, so send never blocks).
struct Message {
  int source = 0;
  int tag = 0;
  std::uint32_t context = 0;  ///< communicator context id
  std::vector<std::byte> payload;
};

/// One receive queue per rank. Senders push; the owning rank pops with
/// (source, tag, context) matching in arrival order, as MPI requires for
/// matching (non-overtaking between a given pair).
class Mailbox {
 public:
  void push(Message msg);

  /// Blocks until a matching message arrives, then removes and returns it.
  Message pop(int source, int tag, std::uint32_t context);

  /// Non-destructive probe: blocks until a match exists, returns its
  /// (source, tag, payload size).
  void probe(int source, int tag, std::uint32_t context, int& out_source,
             int& out_tag, std::size_t& out_size);

  /// Non-blocking pop: removes and returns a matching message if one is
  /// already queued (MPI_Test's underlying primitive).
  std::optional<Message> try_pop(int source, int tag, std::uint32_t context);

 private:
  [[nodiscard]] bool matches(const Message& m, int source, int tag,
                             std::uint32_t context) const;

  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<Message> queue_ DRX_GUARDED_BY(mu_);
};

/// Centralized sense-reversing barrier, one instance per context id.
class BarrierState {
 public:
  explicit BarrierState(int nranks) : nranks_(nranks) {}
  void arrive_and_wait();

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  int nranks_;
  int arrived_ DRX_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ DRX_GUARDED_BY(mu_) = 0;
};

}  // namespace detail

/// Shared state of one simpi job. Created by Runtime; referenced by Comm.
class World {
 public:
  explicit World(int nranks);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }

  detail::Mailbox& mailbox(int rank);

  /// Barrier instance for a communicator context; created on first use
  /// with the communicator's member count.
  detail::BarrierState& barrier(std::uint32_t context, int nranks);

  /// Allocates a fresh communicator context id. Must be called collectively
  /// (all ranks obtain the same id by having rank 0 allocate and broadcast;
  /// Comm::dup handles that protocol).
  std::uint32_t allocate_context();

 private:
  int nranks_;
  std::vector<detail::Mailbox> mailboxes_;

  util::Mutex barrier_mu_;
  // BarrierState is neither movable nor copyable; store stable pointers.
  std::vector<std::pair<std::uint32_t, std::unique_ptr<detail::BarrierState>>>
      barriers_ DRX_GUARDED_BY(barrier_mu_);

  util::Mutex context_mu_;
  /// 0 is reserved for the world comm.
  std::uint32_t next_context_ DRX_GUARDED_BY(context_mu_) = 1;
};

}  // namespace drx::simpi
