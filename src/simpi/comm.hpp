// Communicator: the central simpi object, mirroring MPI_Comm.
//
// Supports point-to-point send/recv/probe (buffered-send semantics),
// sendrecv, the collective set used by DRX-MP (barrier, bcast, reduce,
// allreduce, gather(v), allgather(v), scatter(v), alltoall(v), scan) and
// communicator management (dup, split).
//
// All byte-count parameters are std::size_t; typed convenience templates
// wrap the byte-level primitives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "simpi/world.hpp"
#include "util/error.hpp"

namespace drx::simpi {

/// Result of a receive, mirroring MPI_Status.
struct RecvStatus {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Reduction operators understood by the byte-level reduce engine.
enum class ReduceOp { kSum, kMin, kMax, kProd, kLand, kLor };

class Comm {
 public:
  /// Constructs the world communicator for `rank` of `world`. Normally
  /// called only by Runtime.
  Comm(std::shared_ptr<World> world, int rank);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(members_.size());
  }

  // ---- point to point -----------------------------------------------

  /// Buffered send: copies `data` into the destination mailbox; never
  /// blocks. dest/tag use communicator-local ranks and non-negative tags.
  void send(std::span<const std::byte> data, int dest, int tag);

  /// Blocking receive into `out` (must be exactly the message size for the
  /// fixed-size variant). Returns the matched envelope.
  RecvStatus recv(std::span<std::byte> out, int source, int tag);

  /// Blocking receive of an unknown-size message.
  std::vector<std::byte> recv_any_size(int source, int tag,
                                       RecvStatus* status = nullptr);

  /// Blocks until a matching message is available; fills the envelope
  /// without consuming the message (MPI_Probe).
  RecvStatus probe(int source, int tag);

  /// Combined send+recv that cannot deadlock (MPI_Sendrecv).
  RecvStatus sendrecv(std::span<const std::byte> send_data, int dest,
                      int send_tag, std::span<std::byte> recv_data,
                      int source, int recv_tag);

  // ---- nonblocking point to point --------------------------------------
  // Buffered sends complete immediately, so MPI_Isend degenerates to
  // send(); Request covers the receive side (MPI_Irecv / Test / Wait).

  /// A pending nonblocking receive. Move-only; must be completed by
  /// wait()/test() before destruction (checked).
  class Request {
   public:
    Request() = default;
    Request(Request&& o) noexcept { *this = std::move(o); }
    Request& operator=(Request&& o) noexcept {
      std::swap(comm_, o.comm_);
      std::swap(out_, o.out_);
      std::swap(source_, o.source_);
      std::swap(tag_, o.tag_);
      std::swap(done_, o.done_);
      std::swap(status_, o.status_);
      return *this;
    }
    ~Request() { DRX_CHECK_MSG(done_ || comm_ == nullptr,
                               "request destroyed while pending"); }

    [[nodiscard]] bool done() const noexcept { return done_; }
    [[nodiscard]] const RecvStatus& status() const {
      DRX_CHECK(done_);
      return status_;
    }

   private:
    friend class Comm;
    Comm* comm_ = nullptr;
    std::span<std::byte> out_;
    int source_ = 0;
    int tag_ = 0;
    bool done_ = true;
    RecvStatus status_;
  };

  /// Posts a nonblocking receive into `out` (whose lifetime must cover the
  /// completion). Matching follows the same rules as recv().
  Request irecv(std::span<std::byte> out, int source, int tag);

  /// Blocks until the request completes (MPI_Wait).
  void wait(Request& request);

  /// Completes the request if a matching message is queued (MPI_Test).
  bool test(Request& request);

  /// Waits for every request (MPI_Waitall).
  void wait_all(std::span<Request> requests);

  // ---- collectives (must be called by every member) ------------------

  void barrier();

  /// Broadcast `data` (same byte count everywhere) from `root`.
  void bcast_bytes(std::span<std::byte> data, int root);

  /// Broadcast a variable-size buffer: non-root ranks resize to match.
  void bcast_vector(std::vector<std::byte>& data, int root);

  /// Element-wise reduction of `count` elements of width `elem_size` using
  /// `combine(dst, src)`; result lands on root only (reduce) or on all
  /// ranks (allreduce).
  using CombineFn =
      std::function<void(std::byte* dst, const std::byte* src)>;
  void reduce_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                    std::size_t elem_size, const CombineFn& combine,
                    int root);
  void allreduce_bytes(std::span<const std::byte> in,
                       std::span<std::byte> out, std::size_t elem_size,
                       const CombineFn& combine);

  /// Fixed-size gather: every rank contributes in.size() bytes; root
  /// receives size()*in.size() bytes, rank-ordered.
  void gather_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                    int root);
  void allgather_bytes(std::span<const std::byte> in,
                       std::span<std::byte> out);

  /// Variable-size gather; per-rank byte counts collected automatically.
  std::vector<std::vector<std::byte>> gatherv_bytes(
      std::span<const std::byte> in, int root);
  std::vector<std::vector<std::byte>> allgatherv_bytes(
      std::span<const std::byte> in);

  /// Root scatters chunks[r] to rank r. Non-roots pass an empty vector.
  std::vector<std::byte> scatterv_bytes(
      const std::vector<std::vector<std::byte>>& chunks, int root);

  /// Each rank provides send_chunks[r] for every destination r; returns
  /// the vector of buffers received, indexed by source rank.
  std::vector<std::vector<std::byte>> alltoallv_bytes(
      const std::vector<std::vector<std::byte>>& send_chunks);

  /// Inclusive prefix reduction over one u64 per rank (enough for the
  /// offset bookkeeping DRX-MP needs).
  std::uint64_t scan_sum_u64(std::uint64_t value);

  // ---- communicator management ---------------------------------------

  /// Duplicate with a fresh context (collective).
  Comm dup();

  /// Split into sub-communicators by color; ranks ordered by (key, rank).
  /// color < 0 yields an invalid comm (size 0) for that rank (collective).
  Comm split(int color, int key);

  // ---- typed conveniences ----------------------------------------------

  template <typename T>
  void send_value(const T& v, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(std::as_bytes(std::span<const T>(&v, 1)), dest, tag);
  }

  template <typename T>
  T recv_value(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    recv(std::as_writable_bytes(std::span<T>(&v, 1)), source, tag);
    return v;
  }

  template <typename T>
  void bcast(std::span<T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(std::as_writable_bytes(data), root);
  }

  template <typename T>
  void bcast_value(T& v, int root) {
    bcast(std::span<T>(&v, 1), root);
  }

  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    DRX_CHECK(in.size() == out.size());
    allreduce_bytes(std::as_bytes(in), std::as_writable_bytes(out),
                    sizeof(T), make_combine<T>(op));
  }

  template <typename T>
  T allreduce_value(T v, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&v, 1), std::span<T>(&out, 1), op);
    return out;
  }

  template <typename T>
  std::vector<T> allgather_value(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(static_cast<std::size_t>(size()));
    allgather_bytes(std::as_bytes(std::span<const T>(&v, 1)),
                    std::as_writable_bytes(std::span<T>(out)));
    return out;
  }

 private:
  Comm(std::shared_ptr<World> world, std::uint32_t context, int rank,
       std::vector<int> members);

  template <typename T>
  static CombineFn make_combine(ReduceOp op);

  /// World rank of communicator member r.
  [[nodiscard]] int world_rank(int r) const;

  /// Sends on the internal collective context (keeps collective traffic
  /// from matching user receives).
  void coll_send(std::span<const std::byte> data, int dest, int tag);
  std::vector<std::byte> coll_recv(int source, int tag);

  std::shared_ptr<World> world_;
  std::uint32_t context_;       ///< user p2p context
  std::uint32_t coll_context_;  ///< internal collective context
  int rank_;                    ///< communicator-local rank
  std::vector<int> members_;    ///< comm rank -> world rank
};

template <typename T>
Comm::CombineFn Comm::make_combine(ReduceOp op) {
  return [op](std::byte* dst_raw, const std::byte* src_raw) {
    T dst, src;
    std::memcpy(&dst, dst_raw, sizeof(T));
    std::memcpy(&src, src_raw, sizeof(T));
    switch (op) {
      case ReduceOp::kSum: dst = static_cast<T>(dst + src); break;
      case ReduceOp::kProd: dst = static_cast<T>(dst * src); break;
      case ReduceOp::kMin: dst = src < dst ? src : dst; break;
      case ReduceOp::kMax: dst = src > dst ? src : dst; break;
      case ReduceOp::kLand: dst = static_cast<T>(dst && src); break;
      case ReduceOp::kLor: dst = static_cast<T>(dst || src); break;
    }
    std::memcpy(dst_raw, &dst, sizeof(T));
  };
}

}  // namespace drx::simpi
