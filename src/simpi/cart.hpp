// Cartesian process topology helpers (MPI_Dims_create / MPI_Cart_coords),
// used by DRX-MP's default BLOCK zone partitioner to arrange P processes
// into a k-dimensional process grid.
#pragma once

#include <cstdint>
#include <vector>

namespace drx::simpi {

/// Balanced factorization of `nnodes` into `ndims` factors, most-significant
/// first (MPI_Dims_create with all dims unconstrained). Factors are as close
/// to each other as possible and sorted descending.
std::vector<int> dims_create(int nnodes, int ndims);

/// Row-major rank -> coords in a grid of the given dims (MPI_Cart_coords).
std::vector<int> cart_coords(int rank, const std::vector<int>& dims);

/// Row-major coords -> rank (MPI_Cart_rank).
int cart_rank(const std::vector<int>& coords, const std::vector<int>& dims);

}  // namespace drx::simpi
