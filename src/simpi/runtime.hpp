// Job launcher: runs an SPMD body on N thread-ranks, mirroring
// `mpiexec -n N` + MPI_Init/MPI_Finalize.
#pragma once

#include <functional>

#include "simpi/comm.hpp"

namespace drx::simpi {

/// Runs `body(world_comm)` on `nprocs` ranks, each on its own thread, and
/// joins them all. Any rank aborting (DRX_CHECK failure) aborts the
/// process, matching MPI_Abort semantics.
///
/// Exceptions escaping a rank body are caught, reported, and turned into
/// a process abort: a rank silently disappearing would deadlock its peers,
/// which is the worst possible failure mode for tests.
void run(int nprocs, const std::function<void(Comm&)>& body);

}  // namespace drx::simpi
