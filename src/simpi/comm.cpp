#include "simpi/comm.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drx::simpi {

namespace {

/// Counts one message + its bytes against the calling rank's registry.
void note_message(bool collective, std::size_t bytes) {
  static const obs::MetricId kP2pMsgs = obs::counter_id("simpi.p2p.messages");
  static const obs::MetricId kP2pBytes = obs::counter_id("simpi.p2p.bytes");
  static const obs::MetricId kCollMsgs =
      obs::counter_id("simpi.coll.messages");
  static const obs::MetricId kCollBytes =
      obs::counter_id("simpi.coll.bytes");
  obs::Registry& reg = obs::registry();
  reg.counter(collective ? kCollMsgs : kP2pMsgs).add();
  reg.counter(collective ? kCollBytes : kP2pBytes).add(bytes);
}

/// Counts one collective operation entry. The name lookup is an interned
/// hash probe — noise next to the mailbox traffic a collective performs.
void note_collective(const char* which) {
  obs::registry().counter(obs::counter_id(which)).add();
}
// Internal tags for collective phases. Collective traffic lives on its own
// context, so these never collide with user tags; distinct tags per
// operation keep the mailbox matching honest when algorithms overlap.
constexpr int kTagBcast = 1;
constexpr int kTagReduce = 2;
constexpr int kTagGather = 3;
constexpr int kTagScatter = 4;
constexpr int kTagAlltoall = 5;
constexpr int kTagScan = 6;
constexpr int kTagCtx = 7;

constexpr std::uint32_t kCollBit = 0x80000000u;
}  // namespace

Comm::Comm(std::shared_ptr<World> world, int rank)
    : world_(std::move(world)),
      context_(0),
      coll_context_(kCollBit),
      rank_(rank) {
  members_.resize(static_cast<std::size_t>(world_->nranks()));
  std::iota(members_.begin(), members_.end(), 0);
}

Comm::Comm(std::shared_ptr<World> world, std::uint32_t context, int rank,
           std::vector<int> members)
    : world_(std::move(world)),
      context_(context),
      coll_context_(context | kCollBit),
      rank_(rank),
      members_(std::move(members)) {}

int Comm::world_rank(int r) const {
  DRX_CHECK(r >= 0 && r < size());
  return members_[static_cast<std::size_t>(r)];
}

void Comm::send(std::span<const std::byte> data, int dest, int tag) {
  DRX_CHECK(tag >= 0);
  note_message(/*collective=*/false, data.size());
  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.context = context_;
  msg.payload.assign(data.begin(), data.end());
  world_->mailbox(world_rank(dest)).push(std::move(msg));
}

RecvStatus Comm::recv(std::span<std::byte> out, int source, int tag) {
  detail::Message msg =
      world_->mailbox(world_rank(rank_)).pop(source, tag, context_);
  DRX_CHECK_MSG(msg.payload.size() == out.size(),
                "recv buffer size does not match message size");
  std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
  return RecvStatus{msg.source, msg.tag, msg.payload.size()};
}

std::vector<std::byte> Comm::recv_any_size(int source, int tag,
                                           RecvStatus* status) {
  detail::Message msg =
      world_->mailbox(world_rank(rank_)).pop(source, tag, context_);
  if (status != nullptr) {
    *status = RecvStatus{msg.source, msg.tag, msg.payload.size()};
  }
  return std::move(msg.payload);
}

RecvStatus Comm::probe(int source, int tag) {
  RecvStatus st;
  world_->mailbox(world_rank(rank_))
      .probe(source, tag, context_, st.source, st.tag, st.bytes);
  return st;
}

RecvStatus Comm::sendrecv(std::span<const std::byte> send_data, int dest,
                          int send_tag, std::span<std::byte> recv_data,
                          int source, int recv_tag) {
  // Buffered sends never block, so a plain send-then-recv cannot deadlock.
  send(send_data, dest, send_tag);
  return recv(recv_data, source, recv_tag);
}

Comm::Request Comm::irecv(std::span<std::byte> out, int source, int tag) {
  Request req;
  req.comm_ = this;
  req.out_ = out;
  req.source_ = source;
  req.tag_ = tag;
  req.done_ = false;
  return req;
}

void Comm::wait(Request& request) {
  if (request.done_) return;
  DRX_CHECK(request.comm_ == this);
  request.status_ = recv(request.out_, request.source_, request.tag_);
  request.done_ = true;
}

bool Comm::test(Request& request) {
  if (request.done_) return true;
  DRX_CHECK(request.comm_ == this);
  auto msg = world_->mailbox(world_rank(rank_))
                 .try_pop(request.source_, request.tag_, context_);
  if (!msg.has_value()) return false;
  DRX_CHECK_MSG(msg->payload.size() == request.out_.size(),
                "irecv buffer size does not match message size");
  std::memcpy(request.out_.data(), msg->payload.data(), msg->payload.size());
  request.status_ = RecvStatus{msg->source, msg->tag, msg->payload.size()};
  request.done_ = true;
  return true;
}

void Comm::wait_all(std::span<Request> requests) {
  for (Request& r : requests) wait(r);
}

void Comm::coll_send(std::span<const std::byte> data, int dest, int tag) {
  note_message(/*collective=*/true, data.size());
  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.context = coll_context_;
  msg.payload.assign(data.begin(), data.end());
  world_->mailbox(world_rank(dest)).push(std::move(msg));
}

std::vector<std::byte> Comm::coll_recv(int source, int tag) {
  detail::Message msg =
      world_->mailbox(world_rank(rank_)).pop(source, tag, coll_context_);
  return std::move(msg.payload);
}

void Comm::barrier() {
  note_collective("simpi.coll.barriers");
  obs::ScopedSpan span("simpi.barrier", "simpi");
  world_->barrier(coll_context_, size()).arrive_and_wait();
}

void Comm::bcast_bytes(std::span<std::byte> data, int root) {
  note_collective("simpi.coll.bcasts");
  // Binomial tree rooted at `root` (ranks rotated so root maps to 0).
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Receive from parent.
  if (vrank != 0) {
    int parent_v = vrank ^ (1 << (std::bit_width(
                       static_cast<unsigned>(vrank)) - 1));
    int parent = (parent_v + root) % p;
    std::vector<std::byte> payload = coll_recv(parent, kTagBcast);
    DRX_CHECK(payload.size() == data.size());
    std::memcpy(data.data(), payload.data(), payload.size());
  }
  // Forward to children: v's children are v | bit for every bit above v's
  // highest set bit.
  for (int bit = 1; bit < p; bit <<= 1) {
    if (bit > vrank) {
      const int child_v = vrank | bit;
      if (child_v < p) {
        coll_send(data, (child_v + root) % p, kTagBcast);
      }
    }
  }
}

void Comm::bcast_vector(std::vector<std::byte>& data, int root) {
  std::uint64_t n = data.size();
  bcast_bytes(std::as_writable_bytes(std::span<std::uint64_t>(&n, 1)), root);
  if (rank_ != root) data.resize(static_cast<std::size_t>(n));
  bcast_bytes(data, root);
}

void Comm::reduce_bytes(std::span<const std::byte> in,
                        std::span<std::byte> out, std::size_t elem_size,
                        const CombineFn& combine, int root) {
  note_collective("simpi.coll.reduces");
  DRX_CHECK(in.size() % elem_size == 0);
  const std::size_t count = in.size() / elem_size;
  if (rank_ == root) {
    DRX_CHECK(out.size() == in.size());
    std::memcpy(out.data(), in.data(), in.size());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      std::vector<std::byte> payload = coll_recv(r, kTagReduce);
      DRX_CHECK(payload.size() == in.size());
      for (std::size_t e = 0; e < count; ++e) {
        combine(out.data() + e * elem_size, payload.data() + e * elem_size);
      }
    }
  } else {
    coll_send(in, root, kTagReduce);
  }
}

void Comm::allreduce_bytes(std::span<const std::byte> in,
                           std::span<std::byte> out, std::size_t elem_size,
                           const CombineFn& combine) {
  reduce_bytes(in, out, elem_size, combine, 0);
  bcast_bytes(out, 0);
}

void Comm::gather_bytes(std::span<const std::byte> in,
                        std::span<std::byte> out, int root) {
  note_collective("simpi.coll.gathers");
  if (rank_ == root) {
    DRX_CHECK(out.size() == in.size() * static_cast<std::size_t>(size()));
    std::memcpy(out.data() + static_cast<std::size_t>(root) * in.size(),
                in.data(), in.size());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      std::vector<std::byte> payload = coll_recv(r, kTagGather);
      DRX_CHECK(payload.size() == in.size());
      std::memcpy(out.data() + static_cast<std::size_t>(r) * in.size(),
                  payload.data(), payload.size());
    }
  } else {
    coll_send(in, root, kTagGather);
  }
}

void Comm::allgather_bytes(std::span<const std::byte> in,
                           std::span<std::byte> out) {
  gather_bytes(in, out, 0);
  bcast_bytes(out, 0);
}

std::vector<std::vector<std::byte>> Comm::gatherv_bytes(
    std::span<const std::byte> in, int root) {
  note_collective("simpi.coll.gathers");
  std::vector<std::vector<std::byte>> result;
  if (rank_ == root) {
    result.resize(static_cast<std::size_t>(size()));
    result[static_cast<std::size_t>(root)].assign(in.begin(), in.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      result[static_cast<std::size_t>(r)] = coll_recv(r, kTagGather);
    }
  } else {
    coll_send(in, root, kTagGather);
  }
  return result;
}

std::vector<std::vector<std::byte>> Comm::allgatherv_bytes(
    std::span<const std::byte> in) {
  auto result = gatherv_bytes(in, 0);
  // Serialize at root and broadcast; simple and adequate for metadata-sized
  // payloads (the data path uses alltoallv, not allgatherv).
  std::vector<std::byte> packed;
  if (rank_ == 0) {
    for (const auto& chunk : result) {
      std::uint64_t n = chunk.size();
      const auto* nb = reinterpret_cast<const std::byte*>(&n);
      packed.insert(packed.end(), nb, nb + sizeof(n));
      packed.insert(packed.end(), chunk.begin(), chunk.end());
    }
  }
  bcast_vector(packed, 0);
  if (rank_ != 0) {
    result.clear();
    std::size_t pos = 0;
    while (pos < packed.size()) {
      std::uint64_t n = 0;
      std::memcpy(&n, packed.data() + pos, sizeof(n));
      pos += sizeof(n);
      result.emplace_back(packed.begin() + static_cast<std::ptrdiff_t>(pos),
                          packed.begin() +
                              static_cast<std::ptrdiff_t>(pos + n));
      pos += static_cast<std::size_t>(n);
    }
  }
  return result;
}

std::vector<std::byte> Comm::scatterv_bytes(
    const std::vector<std::vector<std::byte>>& chunks, int root) {
  note_collective("simpi.coll.scatters");
  if (rank_ == root) {
    DRX_CHECK(chunks.size() == static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      coll_send(chunks[static_cast<std::size_t>(r)], r, kTagScatter);
    }
    return chunks[static_cast<std::size_t>(root)];
  }
  return coll_recv(root, kTagScatter);
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    const std::vector<std::vector<std::byte>>& send_chunks) {
  note_collective("simpi.coll.alltoalls");
  std::uint64_t outbound = 0;
  for (const auto& chunk : send_chunks) outbound += chunk.size();
  obs::ScopedSpan span("simpi.alltoallv", "simpi", outbound);
  DRX_CHECK(send_chunks.size() == static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    coll_send(send_chunks[static_cast<std::size_t>(r)], r, kTagAlltoall);
  }
  std::vector<std::vector<std::byte>> result(
      static_cast<std::size_t>(size()));
  result[static_cast<std::size_t>(rank_)] =
      send_chunks[static_cast<std::size_t>(rank_)];
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    result[static_cast<std::size_t>(r)] = coll_recv(r, kTagAlltoall);
  }
  return result;
}

std::uint64_t Comm::scan_sum_u64(std::uint64_t value) {
  note_collective("simpi.coll.scans");
  // Linear chain: rank r receives the prefix from r-1, adds, forwards.
  std::uint64_t prefix = value;
  if (rank_ > 0) {
    std::vector<std::byte> payload = coll_recv(rank_ - 1, kTagScan);
    std::uint64_t left = 0;
    DRX_CHECK(payload.size() == sizeof(left));
    std::memcpy(&left, payload.data(), sizeof(left));
    prefix += left;
  }
  if (rank_ + 1 < size()) {
    coll_send(std::as_bytes(std::span<const std::uint64_t>(&prefix, 1)),
              rank_ + 1, kTagScan);
  }
  return prefix;
}

Comm Comm::dup() {
  std::uint32_t ctx = 0;
  if (rank_ == 0) ctx = world_->allocate_context();
  bcast_bytes(std::as_writable_bytes(std::span<std::uint32_t>(&ctx, 1)), 0);
  return Comm(world_, ctx, rank_, members_);
}

Comm Comm::split(int color, int key) {
  struct Entry {
    int color, key, rank;
  };
  Entry mine{color, key, rank_};
  std::vector<std::byte> packed(sizeof(Entry) *
                                static_cast<std::size_t>(size()));
  allgather_bytes(std::as_bytes(std::span<const Entry>(&mine, 1)), packed);

  std::vector<Entry> all(static_cast<std::size_t>(size()));
  std::memcpy(all.data(), packed.data(), packed.size());

  // Distinct non-negative colors in ascending order; rank 0 of the parent
  // allocates one context per color and broadcasts them so every member of
  // a given color agrees.
  std::vector<int> colors;
  for (const Entry& e : all) {
    if (e.color >= 0 &&
        std::find(colors.begin(), colors.end(), e.color) == colors.end()) {
      colors.push_back(e.color);
    }
  }
  std::sort(colors.begin(), colors.end());
  std::vector<std::uint32_t> contexts(colors.size());
  if (rank_ == 0) {
    for (auto& c : contexts) c = world_->allocate_context();
  }
  bcast_bytes(std::as_writable_bytes(std::span<std::uint32_t>(contexts)), 0);

  if (color < 0) {
    return Comm(world_, world_->allocate_context(), 0, {world_rank(rank_)});
  }

  std::vector<Entry> group;
  for (const Entry& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::stable_sort(group.begin(), group.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                   });

  std::vector<int> new_members;
  int new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    new_members.push_back(world_rank(group[i].rank));
    if (group[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  DRX_CHECK(new_rank >= 0);

  const std::size_t color_idx = static_cast<std::size_t>(
      std::find(colors.begin(), colors.end(), color) - colors.begin());
  return Comm(world_, contexts[color_idx], new_rank, std::move(new_members));
}

}  // namespace drx::simpi
