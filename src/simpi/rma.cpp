#include "simpi/rma.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace drx::simpi {

namespace {

void note_rma(const char* op_counter, const char* bytes_counter,
              std::size_t bytes) {
  obs::Registry& reg = obs::registry();
  reg.counter(obs::counter_id(op_counter)).add();
  reg.counter(obs::counter_id(bytes_counter)).add(bytes);
}

}  // namespace

namespace detail {
void note_rma_accumulate(std::size_t bytes) {
  note_rma("simpi.rma.accumulates", "simpi.rma.bytes_accumulate", bytes);
}
}  // namespace detail

Window::Window(Comm& comm, std::span<std::byte> local) : comm_(&comm) {
  struct Info {
    std::uintptr_t base;
    std::uint64_t size;
  };
  Info mine{reinterpret_cast<std::uintptr_t>(local.data()), local.size()};
  const auto n = static_cast<std::size_t>(comm.size());
  std::vector<Info> all(n);
  comm.allgather_bytes(std::as_bytes(std::span<const Info>(&mine, 1)),
                       std::as_writable_bytes(std::span<Info>(all)));
  bases_.resize(n);
  sizes_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    bases_[r] = all[r].base;
    sizes_[r] = all[r].size;
  }

  // Rank 0 owns the lock table; its address is shared with the group.
  std::uintptr_t shared_addr = 0;
  if (comm.rank() == 0) {
    shared_ = new Shared(n);
    shared_addr = reinterpret_cast<std::uintptr_t>(shared_);
  }
  comm.bcast_value(shared_addr, 0);
  shared_ = reinterpret_cast<Shared*>(shared_addr);
  comm.barrier();
}

Window::~Window() {
  comm_->barrier();
  if (comm_->rank() == 0) delete shared_;
  shared_ = nullptr;
}

std::uint64_t Window::size_at(int rank) const {
  DRX_CHECK(rank >= 0 && rank < comm_->size());
  return sizes_[static_cast<std::size_t>(rank)];
}

std::byte* Window::target_base(int target_rank, std::uint64_t offset,
                               std::uint64_t len) const {
  DRX_CHECK(target_rank >= 0 && target_rank < comm_->size());
  const auto r = static_cast<std::size_t>(target_rank);
  DRX_CHECK_MSG(offset + len <= sizes_[r],
                "RMA access outside target window");
  return reinterpret_cast<std::byte*>(bases_[r]) + offset;
}

util::Mutex& Window::target_mutex(int target_rank) const {
  return shared_->locks[static_cast<std::size_t>(target_rank)];
}

void Window::get(int target_rank, std::uint64_t target_offset,
                 std::span<std::byte> out) {
  note_rma("simpi.rma.gets", "simpi.rma.bytes_get", out.size());
  const std::byte* src = target_base(target_rank, target_offset, out.size());
  util::MutexLock lock(target_mutex(target_rank));
  std::memcpy(out.data(), src, out.size());
}

void Window::put(int target_rank, std::uint64_t target_offset,
                 std::span<const std::byte> data) {
  note_rma("simpi.rma.puts", "simpi.rma.bytes_put", data.size());
  std::byte* dst = target_base(target_rank, target_offset, data.size());
  util::MutexLock lock(target_mutex(target_rank));
  std::memcpy(dst, data.data(), data.size());
}

void Window::fence() { comm_->barrier(); }

}  // namespace drx::simpi
