#include "simpi/datatype.hpp"

#include <algorithm>
#include <cstring>

#include "util/checked.hpp"

namespace drx::simpi {

Datatype::Datatype(std::vector<Block> blocks, std::uint64_t extent)
    : blocks_(std::move(blocks)), extent_(extent) {
  normalize(blocks_);
  size_ = 0;
  for (const Block& b : blocks_) size_ = checked_add(size_, b.length);
}

void Datatype::normalize(std::vector<Block>& blocks) {
  std::erase_if(blocks, [](const Block& b) { return b.length == 0; });
  // Declaration order is semantic (MPI packs in type-map order, and memory
  // types like the paper's inMemoryMap are deliberately non-monotonic), so
  // blocks are NOT sorted. Overlap is still a construction error — MPI
  // forbids overlapping receive types, and enforcing it for sends too keeps
  // pack/unpack true inverses. Check on a sorted copy.
  std::vector<Block> sorted = blocks;
  std::sort(sorted.begin(), sorted.end(),
            [](const Block& a, const Block& b) { return a.offset < b.offset; });
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    DRX_CHECK_MSG(sorted[i].offset + sorted[i].length <= sorted[i + 1].offset,
                  "datatype blocks overlap");
  }
  // Coalesce runs that are adjacent both in declaration order and on disk.
  std::vector<Block> merged;
  for (const Block& b : blocks) {
    if (!merged.empty() &&
        merged.back().offset + merged.back().length == b.offset) {
      merged.back().length += b.length;
    } else {
      merged.push_back(b);
    }
  }
  blocks = std::move(merged);
}

Datatype Datatype::bytes(std::uint64_t n) {
  std::vector<Block> blocks;
  if (n > 0) blocks.push_back(Block{0, n});
  return Datatype(std::move(blocks), n);
}

Datatype Datatype::contiguous(std::uint64_t count, const Datatype& base) {
  std::vector<Block> blocks;
  blocks.reserve(checked_size(checked_mul(count, base.blocks_.size())));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t shift = checked_mul(i, base.extent_);
    for (const Block& b : base.blocks_) {
      blocks.push_back(Block{checked_add(shift, b.offset), b.length});
    }
  }
  return Datatype(std::move(blocks), checked_mul(count, base.extent_));
}

Datatype Datatype::vector(std::uint64_t count, std::uint64_t blocklen,
                          std::uint64_t stride, const Datatype& base) {
  DRX_CHECK_MSG(stride >= blocklen, "vector stride smaller than blocklen");
  std::vector<Block> blocks;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t origin = checked_mul(checked_mul(i, stride),
                                             base.extent_);
    if (base.is_dense()) {
      // Dense base: the whole blocklen run is one gap-free block.
      blocks.push_back(Block{origin, checked_mul(blocklen, base.extent_)});
      continue;
    }
    for (std::uint64_t j = 0; j < blocklen; ++j) {
      const std::uint64_t shift =
          checked_add(origin, checked_mul(j, base.extent_));
      for (const Block& b : base.blocks_) {
        blocks.push_back(Block{checked_add(shift, b.offset), b.length});
      }
    }
  }
  // MPI extent of a vector: from origin to the end of the last block.
  std::uint64_t extent = 0;
  if (count > 0) {
    extent = checked_mul(
        checked_add(checked_mul(count - 1, stride), blocklen), base.extent_);
  }
  return Datatype(std::move(blocks), extent);
}

Datatype Datatype::indexed(std::span<const std::uint64_t> blocklens,
                           std::span<const std::uint64_t> displs,
                           const Datatype& base) {
  DRX_CHECK(blocklens.size() == displs.size());
  std::vector<Block> blocks;
  std::uint64_t extent = 0;
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    const std::uint64_t origin = checked_mul(displs[i], base.extent_);
    if (base.is_dense()) {
      blocks.push_back(Block{origin, checked_mul(blocklens[i], base.extent_)});
    } else {
      for (std::uint64_t j = 0; j < blocklens[i]; ++j) {
        const std::uint64_t shift =
            checked_add(origin, checked_mul(j, base.extent_));
        for (const Block& b : base.blocks_) {
          blocks.push_back(Block{checked_add(shift, b.offset), b.length});
        }
      }
    }
    extent = std::max(
        extent, checked_mul(checked_add(displs[i], blocklens[i]), base.extent_));
  }
  return Datatype(std::move(blocks), extent);
}

Datatype Datatype::hindexed(std::span<const std::uint64_t> blocklens,
                            std::span<const std::uint64_t> byte_displs,
                            const Datatype& base) {
  DRX_CHECK(blocklens.size() == byte_displs.size());
  std::vector<Block> blocks;
  std::uint64_t extent = 0;
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    if (base.is_dense()) {
      blocks.push_back(
          Block{byte_displs[i], checked_mul(blocklens[i], base.extent_)});
    } else {
      for (std::uint64_t j = 0; j < blocklens[i]; ++j) {
        const std::uint64_t shift =
            checked_add(byte_displs[i], checked_mul(j, base.extent_));
        for (const Block& b : base.blocks_) {
          blocks.push_back(Block{checked_add(shift, b.offset), b.length});
        }
      }
    }
    extent = std::max(extent, checked_add(byte_displs[i],
                                          checked_mul(blocklens[i],
                                                      base.extent_)));
  }
  return Datatype(std::move(blocks), extent);
}

Datatype Datatype::subarray(std::span<const std::uint64_t> sizes,
                            std::span<const std::uint64_t> subsizes,
                            std::span<const std::uint64_t> starts, Order order,
                            const Datatype& base) {
  const std::size_t k = sizes.size();
  DRX_CHECK(subsizes.size() == k && starts.size() == k && k >= 1);
  for (std::size_t d = 0; d < k; ++d) {
    DRX_CHECK_MSG(checked_add(starts[d], subsizes[d]) <= sizes[d],
                  "subarray exceeds array bounds");
  }

  // Dimension strides of the containing array, in base-extent units.
  std::vector<std::uint64_t> stride(k, 1);
  if (order == Order::kC) {
    for (std::size_t d = k - 1; d-- > 0;) {
      stride[d] = checked_mul(stride[d + 1], sizes[d + 1]);
    }
  } else {
    for (std::size_t d = 1; d < k; ++d) {
      stride[d] = checked_mul(stride[d - 1], sizes[d - 1]);
    }
  }
  // The fastest-varying dimension: contiguous runs of subsizes[f] items.
  const std::size_t fastest = (order == Order::kC) ? k - 1 : 0;

  std::vector<Block> blocks;
  std::vector<std::uint64_t> idx(k, 0);
  for (;;) {
    std::uint64_t origin = 0;
    for (std::size_t d = 0; d < k; ++d) {
      origin = checked_add(
          origin, checked_mul(checked_add(starts[d], idx[d]), stride[d]));
    }
    const std::uint64_t run = subsizes[fastest];
    if (base.is_dense()) {
      // One Block per fastest-dimension row: the run-granular form the
      // file-view flattener consumes without any per-element merging.
      blocks.push_back(Block{checked_mul(origin, base.extent_),
                             checked_mul(run, base.extent_)});
    } else {
      for (std::uint64_t j = 0; j < run; ++j) {
        const std::uint64_t shift =
            checked_mul(checked_add(origin, j), base.extent_);
        for (const Block& b : base.blocks_) {
          blocks.push_back(Block{checked_add(shift, b.offset), b.length});
        }
      }
    }
    // Odometer over the non-fastest dimensions.
    std::size_t d = k;
    bool done = true;
    while (d-- > 0) {
      if (d == fastest) continue;
      if (++idx[d] < subsizes[d]) {
        done = false;
        break;
      }
      idx[d] = 0;
    }
    if (done) break;
  }
  const std::uint64_t extent =
      checked_mul(checked_product(sizes), base.extent_);
  return Datatype(std::move(blocks), extent);
}

Datatype Datatype::resized(std::uint64_t new_extent) const {
  Datatype copy = *this;
  copy.extent_ = new_extent;
  return copy;
}

bool Datatype::is_monotonic() const noexcept {
  for (std::size_t i = 0; i + 1 < blocks_.size(); ++i) {
    if (blocks_[i].offset + blocks_[i].length > blocks_[i + 1].offset) {
      return false;
    }
  }
  return true;
}

std::uint64_t Datatype::span_bytes(std::uint64_t count) const {
  if (count == 0 || blocks_.empty()) return 0;
  std::uint64_t max_end = 0;
  for (const Block& b : blocks_) {
    max_end = std::max(max_end, checked_add(b.offset, b.length));
  }
  return checked_add(checked_mul(count - 1, extent_), max_end);
}

void Datatype::pack(const std::byte* src, std::uint64_t count,
                    std::vector<std::byte>& out) const {
  out.reserve(out.size() + checked_size(checked_mul(count, size_)));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::byte* item = src + checked_mul(i, extent_);
    for (const Block& b : blocks_) {
      out.insert(out.end(), item + b.offset, item + b.offset + b.length);
    }
  }
}

void Datatype::unpack(std::span<const std::byte> in, std::uint64_t count,
                      std::byte* dst) const {
  DRX_CHECK(in.size() == checked_mul(count, size_));
  const std::byte* cursor = in.data();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::byte* item = dst + checked_mul(i, extent_);
    for (const Block& b : blocks_) {
      std::memcpy(item + b.offset, cursor, checked_size(b.length));
      cursor += b.length;
    }
  }
}

}  // namespace drx::simpi
