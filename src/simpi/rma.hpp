// One-sided communication: MPI-2 RMA windows (MPI_Win) with Get / Put /
// Accumulate and fence synchronization, as used by DRX-MP's GlobalAccessor
// (the Global-Arrays-style shared view of a distributed principal array).
//
// Because simpi ranks share an address space, Get/Put are memcpy under a
// per-target lock; the API nevertheless enforces MPI's discipline (window
// creation and free are collective, epochs bounded by fence), so code
// written against it ports directly to real MPI RMA or ARMCI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "simpi/comm.hpp"
#include "util/sync.hpp"

namespace drx::simpi {

namespace detail {
/// Counts an RMA accumulate against the calling rank's obs registry
/// (out-of-line so the header stays free of obs includes).
void note_rma_accumulate(std::size_t bytes);
}  // namespace detail

class Window {
 public:
  /// Collective: every rank of `comm` exposes `local` (may be empty).
  Window(Comm& comm, std::span<std::byte> local);

  /// Collective free (MPI_Win_free); implicitly fences.
  ~Window();

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// Size in bytes of rank r's exposed region.
  [[nodiscard]] std::uint64_t size_at(int rank) const;

  /// Copies `out.size()` bytes from (target_rank, target_offset) into out.
  void get(int target_rank, std::uint64_t target_offset,
           std::span<std::byte> out);

  /// Copies `data` into (target_rank, target_offset).
  void put(int target_rank, std::uint64_t target_offset,
           std::span<const std::byte> data);

  /// Element-wise `+=` of `data` into the target region (MPI_Accumulate
  /// with MPI_SUM). Atomic with respect to other accumulates on the same
  /// target rank.
  template <typename T>
  void accumulate_sum(int target_rank, std::uint64_t target_offset,
                      std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    detail::note_rma_accumulate(data.size_bytes());
    std::byte* base = target_base(target_rank, target_offset,
                                  data.size_bytes());
    util::MutexLock lock(target_mutex(target_rank));
    T* dst = reinterpret_cast<T*>(base);
    for (std::size_t i = 0; i < data.size(); ++i) dst[i] += data[i];
  }

  /// Closes the current access epoch and opens the next (MPI_Win_fence).
  void fence();

 private:
  /// Validates the target range and returns its local address.
  std::byte* target_base(int target_rank, std::uint64_t offset,
                         std::uint64_t len) const;
  util::Mutex& target_mutex(int target_rank) const;

  /// The per-target lock table. Each lock serializes one-sided access to
  /// that rank's exposed region — memory owned by user code, so there is
  /// no field here for GUARDED_BY to name.
  struct Shared {
    explicit Shared(std::size_t n) : locks(n) {}
    // drx-lint: allow(unannotated-mutex-member) guards caller-owned memory
    std::vector<util::Mutex> locks;
  };

  Comm* comm_;
  std::vector<std::uintptr_t> bases_;  ///< rank -> exposed base address
  std::vector<std::uint64_t> sizes_;   ///< rank -> exposed byte count
  Shared* shared_ = nullptr;           ///< owned by rank 0, freed in dtor
};

}  // namespace drx::simpi
