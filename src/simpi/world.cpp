#include "simpi/world.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace drx::simpi {

namespace detail {

void Mailbox::push(Message msg) {
  {
    util::MutexLock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

bool Mailbox::matches(const Message& m, int source, int tag,
                      std::uint32_t context) const {
  if (m.context != context) return false;
  if (source != kAnySource && m.source != source) return false;
  if (tag != kAnyTag && m.tag != tag) return false;
  return true;
}

Message Mailbox::pop(int source, int tag, std::uint32_t context) {
  util::MutexLock lock(mu_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) {
                             return matches(m, source, tag, context);
                           });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_pop(int source, int tag,
                                        std::uint32_t context) {
  util::MutexLock lock(mu_);
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Message& m) {
                           return matches(m, source, tag, context);
                         });
  if (it == queue_.end()) return std::nullopt;
  Message msg = std::move(*it);
  queue_.erase(it);
  return msg;
}

void Mailbox::probe(int source, int tag, std::uint32_t context,
                    int& out_source, int& out_tag, std::size_t& out_size) {
  util::MutexLock lock(mu_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) {
                             return matches(m, source, tag, context);
                           });
    if (it != queue_.end()) {
      out_source = it->source;
      out_tag = it->tag;
      out_size = it->payload.size();
      return;
    }
    cv_.wait(lock);
  }
}

void BarrierState::arrive_and_wait() {
  util::MutexLock lock(mu_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == nranks_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] {
    mu_.assert_held();
    return generation_ != my_generation;
  });
}

}  // namespace detail

World::World(int nranks)
    : nranks_(nranks), mailboxes_(static_cast<std::size_t>(nranks)) {
  DRX_CHECK(nranks >= 1);
}

detail::Mailbox& World::mailbox(int rank) {
  DRX_CHECK(rank >= 0 && rank < nranks_);
  return mailboxes_[static_cast<std::size_t>(rank)];
}

detail::BarrierState& World::barrier(std::uint32_t context, int nranks) {
  util::MutexLock lock(barrier_mu_);
  for (auto& [id, state] : barriers_) {
    if (id == context) return *state;
  }
  barriers_.emplace_back(
      context, std::make_unique<detail::BarrierState>(nranks));
  return *barriers_.back().second;
}

std::uint32_t World::allocate_context() {
  util::MutexLock lock(context_mu_);
  return next_context_++;
}

}  // namespace drx::simpi
