#include "simpi/cart.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace drx::simpi {

std::vector<int> dims_create(int nnodes, int ndims) {
  DRX_CHECK(nnodes >= 1 && ndims >= 1);
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Repeatedly peel the largest prime factor onto the currently smallest
  // dimension; yields the balanced factorization MPI_Dims_create produces
  // for unconstrained inputs.
  int remaining = nnodes;
  std::vector<int> primes;
  for (int f = 2; f * f <= remaining; ++f) {
    while (remaining % f == 0) {
      primes.push_back(f);
      remaining /= f;
    }
  }
  if (remaining > 1) primes.push_back(remaining);
  std::sort(primes.rbegin(), primes.rend());
  for (int p : primes) {
    auto smallest = std::min_element(dims.begin(), dims.end());
    *smallest *= p;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

std::vector<int> cart_coords(int rank, const std::vector<int>& dims) {
  std::vector<int> coords(dims.size());
  int rem = rank;
  for (std::size_t d = dims.size(); d-- > 0;) {
    coords[d] = rem % dims[d];
    rem /= dims[d];
  }
  DRX_CHECK_MSG(rem == 0, "rank outside cartesian grid");
  return coords;
}

int cart_rank(const std::vector<int>& coords, const std::vector<int>& dims) {
  DRX_CHECK(coords.size() == dims.size());
  int rank = 0;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    DRX_CHECK(coords[d] >= 0 && coords[d] < dims[d]);
    rank = rank * dims[d] + coords[d];
  }
  return rank;
}

}  // namespace drx::simpi
