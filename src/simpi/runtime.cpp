#include "simpi/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace drx::simpi {

void run(int nprocs, const std::function<void(Comm&)>& body) {
  DRX_CHECK(nprocs >= 1);
  auto world = std::make_shared<World>(nprocs);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([world, r, &body] {
      // Rank-local metrics registry + trace pseudo-pid for the body's
      // lifetime; counters fold into the process registry on exit.
      obs::RankScope obs_scope(r);
      Comm comm(world, r);
      try {
        obs::ScopedSpan span("simpi.rank_body", "simpi");
        body(comm);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[simpi] rank %d terminated by exception: %s\n",
                     r, e.what());
        std::fflush(stderr);
        std::abort();
      } catch (...) {
        std::fprintf(stderr, "[simpi] rank %d terminated by unknown exception\n",
                     r);
        std::fflush(stderr);
        std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rank registries just folded into the process registry; take one final
  // sample so jobs shorter than DRX_STATS_INTERVAL still get an endpoint.
  if (obs::sampler_running()) obs::sampler_sample_now();
}

}  // namespace drx::simpi
