#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace drx {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kOutOfRange: return "out-of-range";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kAlreadyExists: return "already-exists";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kFailedPrecondition: return "failed-precondition";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace detail {
void die(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "[drx fatal] %s:%d: %s\n", file, line, what.c_str());
  std::fflush(stderr);
  std::abort();
}
}  // namespace detail

}  // namespace drx
