// Wall-clock stopwatch used by benches alongside the PFS simulated clock.
#pragma once

#include <chrono>

namespace drx {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_micros() const {
    return elapsed_seconds() * 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace drx
