// Byte-level (de)serialization for on-disk metadata.
//
// All multi-byte integers are written little-endian regardless of host
// order so .xmd files are portable across nodes of a heterogeneous cluster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace drx {

/// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  /// Length-prefixed (u32) string.
  void put_string(std::string_view s);
  void put_bytes(std::span<const std::byte> bytes);

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads primitive values back; every getter returns an error Result on
/// truncation so corrupt metadata files fail cleanly rather than crash.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> get_u8();
  [[nodiscard]] Result<std::uint32_t> get_u32();
  [[nodiscard]] Result<std::uint64_t> get_u64();
  [[nodiscard]] Result<std::int64_t> get_i64();
  [[nodiscard]] Result<double> get_f64();
  [[nodiscard]] Result<std::string> get_string();
  [[nodiscard]] Status get_bytes(std::span<std::byte> out);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  [[nodiscard]] Status need(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace drx
