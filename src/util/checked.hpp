// Overflow-checked size arithmetic.
//
// Array-shape products routinely approach 2^63 for out-of-core datasets;
// every bound/offset computation in the library goes through these helpers
// so overflow surfaces as a hard error instead of silent wraparound.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "util/error.hpp"

namespace drx {

/// a * b, aborting on overflow.
inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    DRX_DIE("u64 multiplication overflow");
  }
  return a * b;
}

/// a + b, aborting on overflow.
inline std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  if (b > std::numeric_limits<std::uint64_t>::max() - a) {
    DRX_DIE("u64 addition overflow");
  }
  return a + b;
}

/// Product of a span of extents, overflow-checked. Empty span yields 1
/// (the conventional empty product, matching a rank-0 array of one element).
inline std::uint64_t checked_product(std::span<const std::uint64_t> dims) {
  std::uint64_t p = 1;
  for (std::uint64_t d : dims) p = checked_mul(p, d);
  return p;
}

/// Ceiling division for non-negative integers; divisor must be positive.
inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  DRX_CHECK(b != 0);
  return a / b + (a % b != 0 ? 1 : 0);
}

/// Narrow u64 -> size_t with a range check (no-op on 64-bit platforms,
/// kept for 32-bit portability).
inline std::size_t checked_size(std::uint64_t v) {
  DRX_CHECK(v <= std::numeric_limits<std::size_t>::max());
  return static_cast<std::size_t>(v);
}

}  // namespace drx
