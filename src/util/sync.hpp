// Clang Thread Safety Analysis-annotated synchronization primitives — the
// ONLY sanctioned locking layer in the DRX tree (docs/STATIC_ANALYSIS.md).
//
// Every mutex-guarded structure in core/io/obs/pfs/simpi/util declares a
// drx::util::Mutex (or SharedMutex) and annotates what it protects with
// DRX_GUARDED_BY / DRX_REQUIRES, so a clang build with -Wthread-safety
// proves lock discipline at compile time instead of sampling it at runtime
// with TSan. GCC and non-annotating compilers see plain std::mutex
// semantics: every macro below expands to nothing, the wrappers compile to
// the same code as the raw primitives, and behavior is identical.
//
// scripts/lint_drx.py enforces the layering: raw std::mutex /
// std::condition_variable / std::lock_guard / std::unique_lock are
// forbidden everywhere in src/ except this header.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Clang Thread Safety Analysis attribute macros -------------------------
//
// Names follow the canonical mutex.h from the clang documentation, with a
// DRX_ prefix so nothing collides with other libraries' copies of the
// same header pattern.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DRX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DRX_THREAD_ANNOTATION
#define DRX_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define DRX_CAPABILITY(x) DRX_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define DRX_SCOPED_CAPABILITY DRX_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads/writes require the given capability held.
#define DRX_GUARDED_BY(x) DRX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field annotation: the pointee is guarded by the capability.
#define DRX_PT_GUARDED_BY(x) DRX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: the caller must hold the capability (exclusive /
/// shared) across the call.
#define DRX_REQUIRES(...) \
  DRX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DRX_REQUIRES_SHARED(...) \
  DRX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function annotation: the function acquires / releases the capability.
#define DRX_ACQUIRE(...) DRX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DRX_ACQUIRE_SHARED(...) \
  DRX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DRX_RELEASE(...) DRX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DRX_RELEASE_SHARED(...) \
  DRX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define DRX_RELEASE_GENERIC(...) \
  DRX_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff it returns `b`.
#define DRX_TRY_ACQUIRE(b, ...) \
  DRX_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability.
#define DRX_EXCLUDES(...) DRX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime-free assertion that the capability is held — used where the
/// analysis cannot see the acquisition, e.g. inside condition-variable
/// wait predicates (the lock IS held while the predicate runs) and in the
/// 0-thread inline mode of io::AsyncIoPool, where a job runs on the
/// submitting thread under locks taken by non-lexical callers.
#define DRX_ASSERT_CAPABILITY(x) DRX_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch for a function body the analysis cannot follow. Each use
/// needs a justifying comment (docs/STATIC_ANALYSIS.md suppression
/// policy).
#define DRX_NO_THREAD_SAFETY_ANALYSIS \
  DRX_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Function annotation: returns a reference to the given capability.
#define DRX_RETURN_CAPABILITY(x) DRX_THREAD_ANNOTATION(lock_returned(x))

namespace drx::util {

/// Exclusive mutex (std::mutex with a capability the analysis tracks).
class DRX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DRX_ACQUIRE() { mu_.lock(); }
  void unlock() DRX_RELEASE() { mu_.unlock(); }
  bool try_lock() DRX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Static assertion (no runtime effect) that this mutex is held; see
  /// DRX_ASSERT_CAPABILITY.
  void assert_held() const DRX_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex as a tracked capability).
class DRX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DRX_ACQUIRE() { mu_.lock(); }
  void unlock() DRX_RELEASE() { mu_.unlock(); }
  void lock_shared() DRX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DRX_RELEASE_SHARED() { mu_.unlock_shared(); }

  void assert_held() const DRX_ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over a Mutex. Relockable: unlock()/lock() mirror
/// std::unique_lock so code can open an I/O window mid-scope and the
/// analysis still tracks the capability through it.
class DRX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DRX_ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Releases only if still held; the RELEASE annotation is the contract
  // clang expects on a relockable scoped capability's destructor.
  ~MutexLock() DRX_RELEASE() = default;

  void unlock() DRX_RELEASE() { lock_.unlock(); }
  void lock() DRX_ACQUIRE() { lock_.lock(); }
  [[nodiscard]] bool owns_lock() const noexcept { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (reader) lock over a SharedMutex.
class DRX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DRX_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() DRX_RELEASE_GENERIC() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock over a SharedMutex.
class DRX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DRX_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() DRX_RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to MutexLock. wait() releases and reacquires
/// the lock internally; from the analysis' point of view the capability
/// is held across the call (the same model clang uses for its own
/// examples), which is sound because the lock IS held whenever the
/// caller's code runs. Predicates run under the lock — start them with
/// `mu.assert_held();` when they touch DRX_GUARDED_BY fields.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Pred>
  void wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) {
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace drx::util
