// Minimal leveled logging. Off by default; enabled via DRX_LOG_LEVEL env
// var (0=off, 1=error, 2=warn, 3=info, 4=debug) — libraries must never
// chatter on stdout unasked.
#pragma once

#include <sstream>
#include <string>

namespace drx {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

/// Current level: DRX_LOG_LEVEL is read once, lazily, but the value can be
/// overridden at any time with set_log_level() (test hook; also how
/// embedding applications route their own verbosity knobs through drx).
LogLevel log_level() noexcept;

/// Overrides the level for the rest of the process (thread-safe).
void set_log_level(LogLevel level) noexcept;

/// Thread-safe sink to stderr; prepends level tag.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace drx

#define DRX_LOG(level)                                          \
  if (static_cast<int>(::drx::log_level()) >=                   \
      static_cast<int>(::drx::LogLevel::level))                 \
  ::drx::detail::LogLine(::drx::LogLevel::level)

#define DRX_LOG_INFO DRX_LOG(kInfo)
#define DRX_LOG_WARN DRX_LOG(kWarn)
#define DRX_LOG_ERROR DRX_LOG(kError)
#define DRX_LOG_DEBUG DRX_LOG(kDebug)
