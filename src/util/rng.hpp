// Deterministic pseudo-random generation for tests and benchmarks.
//
// splitmix64: tiny, fast, and identical across platforms, so property tests
// and benchmark workloads are reproducible byte-for-byte.
#pragma once

#include <cstdint>

namespace drx {

/// splitmix64 generator (Steele, Lea & Flood).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace drx
