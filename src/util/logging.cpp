#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/sync.hpp"

namespace drx {

namespace {

constexpr int kUninitialized = -1;

std::atomic<int>& level_slot() noexcept {
  static std::atomic<int> level{kUninitialized};
  return level;
}

int level_from_env() noexcept {
  const char* env = std::getenv("DRX_LOG_LEVEL");
  if (env == nullptr) return 0;
  int v = std::atoi(env);
  if (v < 0) v = 0;
  if (v > 4) v = 4;
  return v;
}

}  // namespace

LogLevel log_level() noexcept {
  std::atomic<int>& slot = level_slot();
  int v = slot.load(std::memory_order_relaxed);
  if (v == kUninitialized) {
    // First call: adopt the environment unless a concurrent set_log_level
    // won the race (compare_exchange keeps the explicit override).
    int expected = kUninitialized;
    slot.compare_exchange_strong(expected, level_from_env(),
                                 std::memory_order_relaxed);
    v = slot.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) noexcept {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  // Serializes the stderr stream only; there is no guarded field.
  // drx-lint: allow(unannotated-mutex-member) interleaving guard for stderr
  static util::Mutex mu;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kOff: return;
  }
  util::MutexLock lock(mu);
  std::fprintf(stderr, "[drx %s] %s\n", tag, msg.c_str());
}

}  // namespace drx
