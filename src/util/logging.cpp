#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace drx {

LogLevel log_level() noexcept {
  static const LogLevel level = [] {
    const char* env = std::getenv("DRX_LOG_LEVEL");
    if (env == nullptr) return LogLevel::kOff;
    int v = std::atoi(env);
    if (v < 0) v = 0;
    if (v > 4) v = 4;
    return static_cast<LogLevel>(v);
  }();
  return level;
}

void log_message(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kOff: return;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[drx %s] %s\n", tag, msg.c_str());
}

}  // namespace drx
