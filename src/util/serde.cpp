#include "util/serde.hpp"

#include <cstring>

namespace drx {

namespace {
template <typename T>
void put_le(std::vector<std::byte>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}
}  // namespace

void ByteWriter::put_u32(std::uint32_t v) { put_le(buf_, v); }
void ByteWriter::put_u64(std::uint64_t v) { put_le(buf_, v); }
void ByteWriter::put_i64(std::int64_t v) {
  put_le(buf_, static_cast<std::uint64_t>(v));
}
void ByteWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_le(buf_, bits);
}
void ByteWriter::put_string(std::string_view s) {
  DRX_CHECK(s.size() <= UINT32_MAX);
  put_u32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) buf_.push_back(static_cast<std::byte>(c));
}
void ByteWriter::put_bytes(std::span<const std::byte> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

Status ByteReader::need(std::size_t n) {
  if (remaining() < n) {
    return Status(ErrorCode::kCorrupt, "truncated metadata buffer");
  }
  return Status::ok();
}

Result<std::uint8_t> ByteReader::get_u8() {
  DRX_RETURN_IF_ERROR(need(1));
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> ByteReader::get_u32() {
  DRX_RETURN_IF_ERROR(need(4));
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::get_u64() {
  DRX_RETURN_IF_ERROR(need(8));
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::int64_t> ByteReader::get_i64() {
  DRX_ASSIGN_OR_RETURN(std::uint64_t v, get_u64());
  return static_cast<std::int64_t>(v);
}

Result<double> ByteReader::get_f64() {
  DRX_ASSIGN_OR_RETURN(std::uint64_t bits, get_u64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::get_string() {
  DRX_ASSIGN_OR_RETURN(std::uint32_t len, get_u32());
  DRX_RETURN_IF_ERROR(need(len));
  std::string s(len, '\0');
  std::memcpy(s.data(), data_.data() + pos_, len);
  pos_ += len;
  return s;
}

Status ByteReader::get_bytes(std::span<std::byte> out) {
  DRX_RETURN_IF_ERROR(need(out.size()));
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
  return Status::ok();
}

}  // namespace drx
