// Error handling primitives for the DRX-MP library.
//
// The library reports recoverable failures through Status / Result<T>
// values (Core Guidelines E.2/E.3: exceptions are reserved for programming
// errors and unrecoverable states; file-format and I/O failures are
// expected and therefore value-encoded).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace drx {

/// Error categories used across all DRX-MP modules.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something structurally wrong
  kOutOfRange,        ///< index/offset beyond current array or file bounds
  kNotFound,          ///< named file or chunk does not exist
  kAlreadyExists,     ///< create over an existing name without overwrite
  kCorrupt,           ///< on-disk metadata failed validation
  kIoError,           ///< underlying storage failure
  kUnsupported,       ///< valid request outside implemented feature set
  kFailedPrecondition,///< operation illegal in current object state
  kInternal,          ///< invariant violation inside the library
};

/// Human-readable name of an ErrorCode ("ok", "invalid-argument", ...).
std::string_view error_code_name(ErrorCode code) noexcept;

/// A cheap, copyable success-or-error value.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code-name>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

/// A value or a Status error. Minimal expected<> stand-in: the library
/// targets toolchains without std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(ErrorCode code, std::string message)
      : status_(code, std::move(message)) {}

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Status of the error branch; Status::ok() when a value is present.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Precondition: is_ok().
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace detail {
[[noreturn]] void die(const char* file, int line, const std::string& what);
}  // namespace detail

}  // namespace drx

/// Aborts with location info; used for unrecoverable invariant violations.
#define DRX_DIE(msg) ::drx::detail::die(__FILE__, __LINE__, (msg))

/// Asserts an invariant in both debug and release builds (these guards are
/// cheap relative to I/O and catch file-format corruption early).
#define DRX_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) DRX_DIE(std::string("check failed: ") + #cond);     \
  } while (0)

#define DRX_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond))                                                             \
      DRX_DIE(std::string("check failed: ") + #cond + " — " + (msg));        \
  } while (0)

/// Propagates an error Status from an expression returning Status.
#define DRX_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::drx::Status drx_st_ = (expr);                \
    if (!drx_st_.is_ok()) return drx_st_;          \
  } while (0)

/// Evaluates an expression returning Result<T>; on error returns its Status,
/// otherwise assigns the unwrapped value to `lhs`.
#define DRX_ASSIGN_OR_RETURN(lhs, expr)            \
  auto DRX_CONCAT_(drx_res_, __LINE__) = (expr);   \
  if (!DRX_CONCAT_(drx_res_, __LINE__).is_ok())    \
    return DRX_CONCAT_(drx_res_, __LINE__).status(); \
  lhs = std::move(DRX_CONCAT_(drx_res_, __LINE__)).value()

/// Discards a Status/Result on purpose, with a written reason. Unlike a
/// bare `(void)` cast this is a sanctioned discard: `-Wunused-result`
/// stays satisfied, the reason survives next to the call, and drx_verify's
/// error-discipline pass accepts it without a suppression comment.
#define DRX_IGNORE_STATUS(expr, reason)                       \
  do {                                                        \
    const auto DRX_CONCAT_(drx_ignored_, __LINE__) = (expr);  \
    (void)DRX_CONCAT_(drx_ignored_, __LINE__);                \
    static_assert(sizeof(reason) > 1, "give a real reason");  \
  } while (0)

#define DRX_CONCAT_INNER_(a, b) a##b
#define DRX_CONCAT_(a, b) DRX_CONCAT_INNER_(a, b)
