#include "mpio/file_view.hpp"

#include <algorithm>

#include "util/checked.hpp"

namespace drx::mpio {

FileView::FileView() : FileView(0, simpi::Datatype::bytes(1),
                                simpi::Datatype::bytes(1)) {}

FileView::FileView(std::uint64_t disp, simpi::Datatype etype,
                   simpi::Datatype filetype)
    : disp_(disp), etype_(std::move(etype)), filetype_(std::move(filetype)) {
  DRX_CHECK_MSG(filetype_.size() > 0, "file view filetype has no payload");
  DRX_CHECK_MSG(etype_.size() > 0, "file view etype has no payload");
  DRX_CHECK_MSG(filetype_.size() % etype_.size() == 0,
                "filetype payload not a multiple of etype size");
  DRX_CHECK_MSG(filetype_.is_monotonic(),
                "file view filetype must have monotonic displacements");
  payload_prefix_.reserve(filetype_.blocks().size());
  std::uint64_t acc = 0;
  for (const simpi::Block& b : filetype_.blocks()) {
    payload_prefix_.push_back(acc);
    acc = checked_add(acc, b.length);
  }
}

std::vector<FileExtent> FileView::map_range(std::uint64_t view_offset,
                                            std::uint64_t length) const {
  std::vector<FileExtent> extents;
  if (length == 0) return extents;
  const std::uint64_t payload = filetype_.size();
  const auto blocks = filetype_.blocks();

  std::uint64_t remaining = length;
  std::uint64_t v = view_offset;
  while (remaining > 0) {
    const std::uint64_t tile = v / payload;
    const std::uint64_t within = v % payload;
    // Block containing `within`: last prefix <= within.
    const auto it = std::upper_bound(payload_prefix_.begin(),
                                     payload_prefix_.end(), within);
    const std::size_t bi =
        static_cast<std::size_t>(it - payload_prefix_.begin()) - 1;
    const simpi::Block& blk = blocks[bi];
    const std::uint64_t into_block = within - payload_prefix_[bi];
    const std::uint64_t take = std::min(remaining, blk.length - into_block);

    const std::uint64_t file_off =
        checked_add(disp_, checked_add(checked_mul(tile, filetype_.extent()),
                                       checked_add(blk.offset, into_block)));
    if (!extents.empty() &&
        extents.back().offset + extents.back().length == file_off) {
      extents.back().length += take;
    } else {
      extents.push_back(FileExtent{file_off, take});
    }
    v += take;
    remaining -= take;
  }
  return extents;
}

std::uint64_t FileView::map_byte(std::uint64_t view_offset) const {
  const auto extents = map_range(view_offset, 1);
  DRX_CHECK(extents.size() == 1);
  return extents.front().offset;
}

}  // namespace drx::mpio
