#include "mpio/file.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>

#include "io/async_pool.hpp"
#include "io/config.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/checked.hpp"

namespace drx::mpio {

namespace {

/// Gap (bytes) up to which an aggregator's read coalesces non-adjacent
/// pieces into one device access (ROMIO-style data sieving). Writes never
/// sieve — that would clobber the hole — and coalesce only exact-adjacent
/// runs. Mutable for the sieve ablation bench.
std::atomic<std::uint64_t> g_read_sieve_gap{64 * 1024};

struct Piece {
  std::uint64_t offset = 0;  ///< absolute file offset
  std::uint64_t length = 0;
  int source = 0;            ///< requesting rank
  std::uint64_t reply_pos = 0;  ///< byte position in the source's reply
};

}  // namespace

std::uint64_t read_sieve_gap() noexcept {
  return g_read_sieve_gap.load(std::memory_order_relaxed);
}

void set_read_sieve_gap(std::uint64_t bytes) noexcept {
  g_read_sieve_gap.store(bytes, std::memory_order_relaxed);
}

Result<File> File::open(simpi::Comm& comm, pfs::Pfs& fs,
                        const std::string& name, int mode) {
  const bool has_access_mode = (mode & (kModeRdOnly | kModeWrOnly |
                                        kModeRdWr)) != 0;
  if (!has_access_mode) {
    return Status(ErrorCode::kInvalidArgument,
                  "open mode must include rdonly, wronly or rdwr");
  }

  // Rank 0 performs the namespace operation; the outcome is broadcast so
  // every rank returns a consistent Result.
  std::uint8_t ok = 1;
  std::string error;
  if (comm.rank() == 0) {
    if ((mode & kModeCreate) != 0) {
      if (fs.exists(name)) {
        if ((mode & kModeExcl) != 0) {
          ok = 0;
          error = "file exists (create|excl): " + name;
        }
      } else {
        auto created = fs.create(name);
        if (!created.is_ok()) {
          ok = 0;
          error = created.status().message();
        }
      }
    } else if (!fs.exists(name)) {
      ok = 0;
      error = "no such file: " + name;
    }
  }
  comm.bcast_value(ok, 0);
  if (ok == 0) {
    if (comm.rank() != 0) error = "collective open failed on rank 0";
    return Status(ErrorCode::kIoError, error);
  }
  comm.barrier();  // namespace op visible before peers open

  auto handle = fs.open(name);
  if (!handle.is_ok()) return handle.status();

  auto state = std::make_unique<State>();
  state->comm = &comm;
  state->fs = &fs;
  state->name = name;
  state->mode = mode;
  state->handle = std::move(handle).value();
  return File(std::move(state));
}

Status File::close() {
  DRX_CHECK(is_open());
  state_->comm->barrier();
  if ((state_->mode & kModeDeleteOnClose) != 0 && state_->comm->rank() == 0) {
    DRX_RETURN_IF_ERROR(state_->fs->remove(state_->name));
  }
  state_->comm->barrier();
  state_.reset();
  return Status::ok();
}

void File::set_view(std::uint64_t disp, const simpi::Datatype& etype,
                    const simpi::Datatype& filetype) {
  DRX_CHECK(is_open());
  state_->view = FileView(disp, etype, filetype);
  state_->pointer_etypes = 0;
}

const FileView& File::view() const {
  DRX_CHECK(is_open());
  return state_->view;
}

Status File::check_readable() const {
  DRX_CHECK(is_open());
  if ((state_->mode & (kModeRdOnly | kModeRdWr)) == 0) {
    return Status(ErrorCode::kFailedPrecondition,
                  "file not opened for reading");
  }
  return Status::ok();
}

Status File::check_writable() const {
  DRX_CHECK(is_open());
  if ((state_->mode & (kModeWrOnly | kModeRdWr)) == 0) {
    return Status(ErrorCode::kFailedPrecondition,
                  "file not opened for writing");
  }
  return Status::ok();
}

Status File::read_at(std::uint64_t offset, void* buf, std::uint64_t count,
                     const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_readable());
  return transfer_independent(offset, buf, count, memtype, /*writing=*/false);
}

Status File::write_at(std::uint64_t offset, const void* buf,
                      std::uint64_t count, const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_writable());
  return transfer_independent(offset, const_cast<void*>(buf), count, memtype,
                              /*writing=*/true);
}

Status File::read(void* buf, std::uint64_t count,
                  const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_readable());
  const std::uint64_t etypes_moved =
      checked_mul(count, memtype.size()) / state_->view.etype().size();
  DRX_RETURN_IF_ERROR(transfer_independent(state_->pointer_etypes, buf, count,
                                           memtype, /*writing=*/false));
  state_->pointer_etypes += etypes_moved;
  return Status::ok();
}

Status File::write(const void* buf, std::uint64_t count,
                   const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_writable());
  const std::uint64_t etypes_moved =
      checked_mul(count, memtype.size()) / state_->view.etype().size();
  DRX_RETURN_IF_ERROR(transfer_independent(state_->pointer_etypes,
                                           const_cast<void*>(buf), count,
                                           memtype, /*writing=*/true));
  state_->pointer_etypes += etypes_moved;
  return Status::ok();
}

void File::seek(std::uint64_t offset_etypes) {
  DRX_CHECK(is_open());
  state_->pointer_etypes = offset_etypes;
}

std::uint64_t File::position() const {
  DRX_CHECK(is_open());
  return state_->pointer_etypes;
}

Status File::transfer_independent(std::uint64_t offset_etypes, void* buf,
                                  std::uint64_t count,
                                  const simpi::Datatype& memtype,
                                  bool writing) {
  const std::uint64_t total = checked_mul(count, memtype.size());
  if (total == 0) return Status::ok();
  obs::ScopedSpan span(
      writing ? "mpio.independent_write" : "mpio.independent_read", "mpio",
      total);
  {
    static const obs::MetricId kOps = obs::counter_id("mpio.independent_ops");
    static const obs::MetricId kRead = obs::counter_id("mpio.bytes_read");
    static const obs::MetricId kWritten =
        obs::counter_id("mpio.bytes_written");
    obs::Registry& reg = obs::registry();
    reg.counter(kOps).add();
    reg.counter(writing ? kWritten : kRead).add(total);
  }
  if (total % state_->view.etype().size() != 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "transfer size not a multiple of the view etype");
  }
  const std::uint64_t view_off =
      checked_mul(offset_etypes, state_->view.etype().size());
  const auto extents = state_->view.map_range(view_off, total);

  if (writing) {
    std::vector<std::byte> payload;
    memtype.pack(static_cast<const std::byte*>(buf), count, payload);
    std::uint64_t pos = 0;
    for (const FileExtent& e : extents) {
      DRX_RETURN_IF_ERROR(state_->handle.write_at(
          e.offset, std::span<const std::byte>(payload)
                        .subspan(checked_size(pos), checked_size(e.length))));
      pos += e.length;
    }
  } else {
    std::vector<std::byte> payload(checked_size(total));
    std::uint64_t pos = 0;
    for (const FileExtent& e : extents) {
      DRX_RETURN_IF_ERROR(state_->handle.read_at(
          e.offset, std::span<std::byte>(payload).subspan(
                        checked_size(pos), checked_size(e.length))));
      pos += e.length;
    }
    memtype.unpack(payload, count, static_cast<std::byte*>(buf));
  }
  return Status::ok();
}

Status File::read_all(void* buf, std::uint64_t count,
                      const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_readable());
  const std::uint64_t etypes_moved =
      checked_mul(count, memtype.size()) / state_->view.etype().size();
  DRX_RETURN_IF_ERROR(transfer_collective(state_->pointer_etypes, buf, count,
                                          memtype, /*writing=*/false));
  state_->pointer_etypes += etypes_moved;
  return Status::ok();
}

Status File::write_all(const void* buf, std::uint64_t count,
                       const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_writable());
  const std::uint64_t etypes_moved =
      checked_mul(count, memtype.size()) / state_->view.etype().size();
  DRX_RETURN_IF_ERROR(transfer_collective(state_->pointer_etypes,
                                          const_cast<void*>(buf), count,
                                          memtype, /*writing=*/true));
  state_->pointer_etypes += etypes_moved;
  return Status::ok();
}

Status File::read_at_all(std::uint64_t offset, void* buf, std::uint64_t count,
                         const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_readable());
  return transfer_collective(offset, buf, count, memtype, /*writing=*/false);
}

Status File::write_at_all(std::uint64_t offset, const void* buf,
                          std::uint64_t count,
                          const simpi::Datatype& memtype) {
  DRX_RETURN_IF_ERROR(check_writable());
  return transfer_collective(offset, const_cast<void*>(buf), count, memtype,
                             /*writing=*/true);
}

Status File::transfer_collective(std::uint64_t offset_etypes, void* buf,
                                 std::uint64_t count,
                                 const simpi::Datatype& memtype,
                                 bool writing) {
  simpi::Comm& comm = *state_->comm;
  const int p = comm.size();
  const auto np = static_cast<std::size_t>(p);

  const std::uint64_t total = checked_mul(count, memtype.size());
  if (total != 0 && total % state_->view.etype().size() != 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "transfer size not a multiple of the view etype");
  }
  obs::ScopedSpan coll_span(
      writing ? "mpio.collective_write" : "mpio.collective_read", "mpio",
      total);
  {
    static const obs::MetricId kOps = obs::counter_id("mpio.collective_ops");
    static const obs::MetricId kRead = obs::counter_id("mpio.bytes_read");
    static const obs::MetricId kWritten =
        obs::counter_id("mpio.bytes_written");
    obs::Registry& reg = obs::registry();
    reg.counter(kOps).add();
    reg.counter(writing ? kWritten : kRead).add(total);
  }

  // ---- Phase 0: local request list and global file-domain bounds -------
  std::vector<FileExtent> extents;
  if (total != 0) {
    extents = state_->view.map_range(
        checked_mul(offset_etypes, state_->view.etype().size()), total);
  }
  std::uint64_t my_lo = UINT64_MAX;
  std::uint64_t my_hi = 0;
  for (const FileExtent& e : extents) {
    my_lo = std::min(my_lo, e.offset);
    my_hi = std::max(my_hi, e.offset + e.length);
  }
  const std::uint64_t lo = comm.allreduce_value(my_lo, simpi::ReduceOp::kMin);
  const std::uint64_t hi = comm.allreduce_value(my_hi, simpi::ReduceOp::kMax);
  if (lo >= hi) return Status::ok();  // nothing requested anywhere

  // File domain split evenly over all ranks acting as aggregators.
  const std::uint64_t domain = ceil_div(hi - lo, static_cast<std::uint64_t>(p));
  const auto aggregator_of = [&](std::uint64_t off) {
    return static_cast<std::size_t>((off - lo) / domain);
  };
  const auto domain_end = [&](std::size_t a) {
    return lo + checked_mul(domain, static_cast<std::uint64_t>(a) + 1);
  };

  // ---- Phase 1: split extents at domain boundaries, mail to aggregators.
  // Request wire format per aggregator: u64 npieces, then (off, len) pairs;
  // for writes the piece payloads follow, concatenated in the same order.
  std::vector<std::byte> payload;  // packed user data (write) or staging (read)
  if (writing) {
    memtype.pack(static_cast<const std::byte*>(buf), count, payload);
  } else {
    payload.resize(checked_size(total));
  }

  struct LocalPiece {
    std::size_t aggregator;
    std::uint64_t offset, length, payload_pos;
  };
  std::vector<LocalPiece> pieces;
  {
    std::uint64_t pos = 0;
    for (const FileExtent& e : extents) {
      std::uint64_t off = e.offset;
      std::uint64_t remaining = e.length;
      while (remaining > 0) {
        const std::size_t a = aggregator_of(off);
        const std::uint64_t take = std::min(remaining, domain_end(a) - off);
        pieces.push_back(LocalPiece{a, off, take, pos});
        off += take;
        pos += take;
        remaining -= take;
      }
    }
  }

  std::vector<std::vector<std::byte>> to_agg(np);
  {
    std::vector<std::uint64_t> counts(np, 0);
    for (const LocalPiece& lp : pieces) ++counts[lp.aggregator];
    for (std::size_t a = 0; a < np; ++a) {
      to_agg[a].reserve(8 + 16 * checked_size(counts[a]));
      const auto* cb = reinterpret_cast<const std::byte*>(&counts[a]);
      to_agg[a].insert(to_agg[a].end(), cb, cb + 8);
    }
    for (const LocalPiece& lp : pieces) {
      auto& msg = to_agg[lp.aggregator];
      const auto* ob = reinterpret_cast<const std::byte*>(&lp.offset);
      const auto* lb = reinterpret_cast<const std::byte*>(&lp.length);
      msg.insert(msg.end(), ob, ob + 8);
      msg.insert(msg.end(), lb, lb + 8);
    }
    if (writing) {
      for (const LocalPiece& lp : pieces) {
        auto& msg = to_agg[lp.aggregator];
        msg.insert(msg.end(),
                   payload.begin() + static_cast<std::ptrdiff_t>(lp.payload_pos),
                   payload.begin() +
                       static_cast<std::ptrdiff_t>(lp.payload_pos + lp.length));
      }
    }
  }
  std::vector<std::vector<std::byte>> inbound;
  {
    // Request (and, for writes, payload) exchange: every rank mails its
    // pieces to the aggregators that own them.
    obs::ScopedSpan exchange_span("mpio.coll.exchange", "mpio");
    inbound = comm.alltoallv_bytes(to_agg);
  }

  // ---- Phase 2: aggregate. Parse inbound pieces, order by file offset,
  // coalesce, and hit the PFS with large accesses.
  std::vector<Piece> agg_pieces;
  std::vector<const std::byte*> agg_payload;  // write: per-piece payload ptr
  std::vector<std::uint64_t> reply_sizes(np, 0);
  for (std::size_t src = 0; src < np; ++src) {
    const auto& msg = inbound[src];
    if (msg.empty()) continue;
    std::uint64_t n = 0;
    DRX_CHECK(msg.size() >= 8);
    std::memcpy(&n, msg.data(), 8);
    const std::byte* hdr = msg.data() + 8;
    const std::byte* data = hdr + 16 * n;
    std::uint64_t reply_pos = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      Piece piece;
      std::memcpy(&piece.offset, hdr + 16 * i, 8);
      std::memcpy(&piece.length, hdr + 16 * i + 8, 8);
      piece.source = static_cast<int>(src);
      piece.reply_pos = reply_pos;
      reply_pos += piece.length;
      agg_pieces.push_back(piece);
      if (writing) {
        agg_payload.push_back(data);
        data += piece.length;
      }
    }
    reply_sizes[src] = reply_pos;
  }

  std::vector<std::size_t> order(agg_pieces.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (agg_pieces[a].offset != agg_pieces[b].offset) {
      return agg_pieces[a].offset < agg_pieces[b].offset;
    }
    return agg_pieces[a].source < agg_pieces[b].source;
  });

  std::vector<std::vector<std::byte>> replies(np);
  for (std::size_t src = 0; src < np; ++src) {
    replies[src].resize(checked_size(writing ? 0 : reply_sizes[src]));
  }

  Status io_status;
  if (!agg_pieces.empty()) {
    // Aggregated file access: the paper's amortization step, where many
    // small per-rank requests become few large device accesses.
    obs::ScopedSpan io_span("mpio.coll.io", "mpio");
    static const obs::MetricId kPieces = obs::counter_id("mpio.agg_pieces");
    static const obs::MetricId kRuns = obs::counter_id("mpio.agg_runs");
    obs::registry().counter(kPieces).add(agg_pieces.size());

    // Coalesce the sorted pieces into device-access runs.
    struct Run {
      std::size_t begin, end;        ///< range in `order`
      std::uint64_t off, end_off;    ///< file byte range covered
    };
    std::vector<Run> runs;
    std::size_t run_begin = 0;
    const std::uint64_t gap_allowed =
        writing ? 0 : g_read_sieve_gap.load(std::memory_order_relaxed);
    while (run_begin < order.size()) {
      const std::uint64_t run_off = agg_pieces[order[run_begin]].offset;
      std::uint64_t run_end_off =
          run_off + agg_pieces[order[run_begin]].length;
      std::size_t run_end = run_begin + 1;
      while (run_end < order.size()) {
        const Piece& nxt = agg_pieces[order[run_end]];
        if (nxt.offset > run_end_off + gap_allowed) break;
        run_end_off = std::max(run_end_off, nxt.offset + nxt.length);
        ++run_end;
      }
      runs.push_back(Run{run_begin, run_end, run_off, run_end_off});
      run_begin = run_end;
    }

    // Aggregator attribution must be captured here: fan-out pool threads
    // run outside this rank's RankScope.
    const int agg_rank = obs::current_rank();
    const auto do_run = [&, agg_rank](const Run& run) -> Status {
      obs::profile_aggregator(agg_rank, 1, run.end_off - run.off);
      std::vector<std::byte> staging(checked_size(run.end_off - run.off));
      if (writing) {
        // Assemble then write. Exact-adjacency coalescing means every byte
        // of the staging buffer is covered by some piece.
        for (std::size_t i = run.begin; i < run.end; ++i) {
          const Piece& piece = agg_pieces[order[i]];
          std::memcpy(staging.data() + (piece.offset - run.off),
                      agg_payload[order[i]], checked_size(piece.length));
        }
        return state_->handle.write_at(run.off, staging);
      }
      Status st = state_->handle.read_at(run.off, staging);
      if (st.is_ok()) {
        // Runs cover disjoint file ranges, so their reply targets are
        // disjoint too: scattering from workers is race-free.
        for (std::size_t i = run.begin; i < run.end; ++i) {
          const Piece& piece = agg_pieces[order[i]];
          std::memcpy(replies[static_cast<std::size_t>(piece.source)].data() +
                          piece.reply_pos,
                      staging.data() + (piece.offset - run.off),
                      checked_size(piece.length));
        }
      }
      return st;
    };

    const int fan = io::io_threads();
    if (fan > 1 && runs.size() > 1) {
      // Fan the runs out over an I/O pool: the PFS serializes per server,
      // so runs landing on different servers proceed concurrently
      // (docs/ASYNC_IO.md).
      io::AsyncIoPool pool(
          {std::min(fan, static_cast<int>(runs.size())), runs.size()});
      std::vector<std::future<Status>> results;
      results.reserve(runs.size());
      for (const Run& run : runs) {
        results.push_back(pool.submit_with_future(
            obs::current_op(), [&do_run, &run] { return do_run(run); }));
      }
      std::uint64_t completed_runs = 0;
      for (std::future<Status>& f : results) {
        const Status st = f.get();
        if (st.is_ok()) {
          ++completed_runs;
        } else if (io_status.is_ok()) {
          io_status = st;  // first failure wins; remaining runs still join
        }
      }
      obs::registry().counter(kRuns).add(completed_runs);
    } else {
      for (const Run& run : runs) {
        io_status = do_run(run);
        if (!io_status.is_ok()) break;
        obs::registry().counter(kRuns).add();
      }
    }
  }

  // Aggregator failures must surface on every rank (collective semantics).
  const std::uint8_t ok_local = io_status.is_ok() ? 1 : 0;
  const std::uint8_t ok_all =
      comm.allreduce_value(ok_local, simpi::ReduceOp::kMin);

  // ---- Phase 3: return read payloads to requesters.
  if (!writing) {
    obs::ScopedSpan shuffle_span("mpio.coll.shuffle", "mpio");
    std::vector<std::vector<std::byte>> returned =
        comm.alltoallv_bytes(replies);
    if (ok_all != 0) {
      std::vector<std::uint64_t> stream_pos(np, 0);
      for (const LocalPiece& lp : pieces) {
        const auto& stream = returned[lp.aggregator];
        DRX_CHECK(stream_pos[lp.aggregator] + lp.length <= stream.size());
        std::memcpy(payload.data() + lp.payload_pos,
                    stream.data() + stream_pos[lp.aggregator],
                    checked_size(lp.length));
        stream_pos[lp.aggregator] += lp.length;
      }
      memtype.unpack(payload, count, static_cast<std::byte*>(buf));
    }
  } else {
    comm.barrier();  // writes visible before any rank proceeds
  }

  if (ok_all == 0) {
    return io_status.is_ok()
               ? Status(ErrorCode::kIoError, "collective I/O failed on a peer")
               : io_status;
  }
  return Status::ok();
}

std::uint64_t File::get_size() const {
  DRX_CHECK(is_open());
  return state_->handle.size();
}

Status File::set_size(std::uint64_t bytes) {
  DRX_CHECK(is_open());
  state_->comm->barrier();
  Status st;
  if (state_->comm->rank() == 0) st = state_->handle.truncate(bytes);
  state_->comm->barrier();
  return st;
}

Status File::sync() {
  DRX_CHECK(is_open());
  state_->comm->barrier();
  return Status::ok();
}

}  // namespace drx::mpio
