// File views (MPI_File_set_view): mapping the linear "view space" a rank
// sees onto physical file offsets through a displacement + etype + tiled
// filetype, exactly as MPI-IO defines it.
#pragma once

#include <cstdint>
#include <vector>

#include "simpi/datatype.hpp"
#include "util/error.hpp"

namespace drx::mpio {

/// A contiguous physical extent of a mapped range.
struct FileExtent {
  std::uint64_t offset = 0;  ///< absolute file offset in bytes
  std::uint64_t length = 0;  ///< bytes

  friend bool operator==(const FileExtent&, const FileExtent&) = default;
};

class FileView {
 public:
  /// Default view: disp 0, etype = filetype = a single byte (MPI default).
  FileView();

  /// MPI requires filetype displacements to be monotonically
  /// non-decreasing; Datatype's normalized form guarantees it.
  FileView(std::uint64_t disp, simpi::Datatype etype,
           simpi::Datatype filetype);

  [[nodiscard]] std::uint64_t disp() const noexcept { return disp_; }
  [[nodiscard]] const simpi::Datatype& etype() const noexcept {
    return etype_;
  }
  [[nodiscard]] const simpi::Datatype& filetype() const noexcept {
    return filetype_;
  }

  /// Payload bytes per filetype tile.
  [[nodiscard]] std::uint64_t tile_payload() const noexcept {
    return filetype_.size();
  }

  /// Maps `length` visible bytes starting at visible byte `view_offset`
  /// onto physical extents, coalescing runs that are contiguous on disk.
  [[nodiscard]] std::vector<FileExtent> map_range(std::uint64_t view_offset,
                                                  std::uint64_t length) const;

  /// Physical offset of a single visible byte.
  [[nodiscard]] std::uint64_t map_byte(std::uint64_t view_offset) const;

 private:
  std::uint64_t disp_;
  simpi::Datatype etype_;
  simpi::Datatype filetype_;
  std::vector<std::uint64_t> payload_prefix_;  ///< per-block payload start
};

}  // namespace drx::mpio
