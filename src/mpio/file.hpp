// MPI-IO style parallel file access over simpi + the PFS simulator.
//
// Mirrors the MPI_File_* subset the paper's code listing uses, plus the
// collective read/write DRX-MP is built on:
//   open/close (collective), set_view, seek, read/write (+_at variants),
//   read_all/write_all (+_at_all) with two-phase collective buffering,
//   get_size/set_size/sync.
//
// Offsets follow MPI-IO semantics: explicit offsets and the individual
// file pointer are in units of the view's *etype*; the view's filetype is
// tiled from the displacement onward.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mpio/file_view.hpp"
#include "pfs/pfs.hpp"
#include "simpi/comm.hpp"
#include "simpi/datatype.hpp"

namespace drx::mpio {

/// Data-sieving gap for collective-read aggregation: non-adjacent pieces
/// within this many bytes coalesce into one device access (default 64 KiB,
/// matching ROMIO's spirit). Exposed as a knob for the sieve ablation
/// bench; applies process-wide.
std::uint64_t read_sieve_gap() noexcept;
void set_read_sieve_gap(std::uint64_t bytes) noexcept;

/// Open-mode bits (MPI_MODE_*).
enum ModeBits : int {
  kModeRdOnly = 1,
  kModeWrOnly = 2,
  kModeRdWr = 4,
  kModeCreate = 8,
  kModeExcl = 16,
  kModeDeleteOnClose = 32,
};

class File {
 public:
  File() = default;

  /// Collective open across `comm`.
  [[nodiscard]] static Result<File> open(simpi::Comm& comm, pfs::Pfs& fs,
                           const std::string& name, int mode);

  /// Collective close.
  [[nodiscard]] Status close();

  [[nodiscard]] bool is_open() const noexcept { return state_ != nullptr; }

  /// Sets this rank's view (MPI_File_set_view). Resets the individual
  /// file pointer to 0. Collective in MPI; each rank may pass a different
  /// filetype, so no synchronization is required here beyond the caller
  /// invoking it everywhere.
  void set_view(std::uint64_t disp, const simpi::Datatype& etype,
                const simpi::Datatype& filetype);

  [[nodiscard]] const FileView& view() const;

  // ---- independent I/O -------------------------------------------------
  // `offset` is in etypes relative to the view; buffers are described by a
  // count of memory-datatype items, as in MPI.

  [[nodiscard]] Status read_at(std::uint64_t offset, void* buf, std::uint64_t count,
                 const simpi::Datatype& memtype);
  [[nodiscard]] Status write_at(std::uint64_t offset, const void* buf, std::uint64_t count,
                  const simpi::Datatype& memtype);

  /// Read/write at the individual file pointer, advancing it.
  [[nodiscard]] Status read(void* buf, std::uint64_t count, const simpi::Datatype& memtype);
  [[nodiscard]] Status write(const void* buf, std::uint64_t count,
               const simpi::Datatype& memtype);

  /// MPI_File_seek with MPI_SEEK_SET semantics (etype units).
  void seek(std::uint64_t offset_etypes);
  [[nodiscard]] std::uint64_t position() const;

  // ---- collective I/O ---------------------------------------------------
  // Two-phase: requests are exchanged, file space is partitioned among all
  // ranks acting as aggregators, aggregators perform large coalesced
  // accesses, and payloads are redistributed with alltoallv.

  [[nodiscard]] Status read_all(void* buf, std::uint64_t count,
                  const simpi::Datatype& memtype);
  [[nodiscard]] Status write_all(const void* buf, std::uint64_t count,
                   const simpi::Datatype& memtype);
  [[nodiscard]] Status read_at_all(std::uint64_t offset, void* buf, std::uint64_t count,
                     const simpi::Datatype& memtype);
  [[nodiscard]] Status write_at_all(std::uint64_t offset, const void* buf,
                      std::uint64_t count, const simpi::Datatype& memtype);

  // ---- metadata ----------------------------------------------------------

  [[nodiscard]] std::uint64_t get_size() const;  ///< bytes (MPI_File_get_size)
  [[nodiscard]] Status set_size(std::uint64_t bytes);          ///< collective
  [[nodiscard]] Status sync();                                 ///< collective

 private:
  struct State {
    simpi::Comm* comm = nullptr;
    pfs::Pfs* fs = nullptr;
    std::string name;
    int mode = 0;
    pfs::FileHandle handle;
    FileView view;
    std::uint64_t pointer_etypes = 0;  ///< individual file pointer
  };

  explicit File(std::unique_ptr<State> state) : state_(std::move(state)) {}

  [[nodiscard]] Status check_readable() const;
  [[nodiscard]] Status check_writable() const;

  /// Independent transfer core: maps the view range and performs per-extent
  /// PFS accesses through a pack/unpack staging buffer.
  [[nodiscard]] Status transfer_independent(std::uint64_t offset_etypes, void* buf,
                              std::uint64_t count,
                              const simpi::Datatype& memtype, bool writing);

  /// Two-phase collective transfer core.
  [[nodiscard]] Status transfer_collective(std::uint64_t offset_etypes, void* buf,
                             std::uint64_t count,
                             const simpi::Datatype& memtype, bool writing);

  std::unique_ptr<State> state_;
};

}  // namespace drx::mpio
