// Byte-addressable storage abstraction used by the serial DRX library.
//
// The paper's serial DRX runs on "any POSIX-compliant Unix file system";
// DRX-MP runs on a parallel file system through MPI-IO. Both paths in this
// reproduction go through small interfaces so the core array logic is
// storage-agnostic:
//   - PosixStorage  — a real file on the host file system
//   - MemStorage    — in-memory, with the simulator's cost accounting
//   - PfsStorage    — adapter over a striped pfs::FileHandle
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pfs/block_device.hpp"
#include "pfs/pfs.hpp"
#include "util/error.hpp"

namespace drx::pfs {

class Storage {
 public:
  virtual ~Storage() = default;

  virtual Status read_at(std::uint64_t offset, std::span<std::byte> out) = 0;
  [[nodiscard]] virtual Status write_at(std::uint64_t offset,
                          std::span<const std::byte> data) = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  virtual Status truncate(std::uint64_t new_size) = 0;
  virtual Status flush() = 0;
};

/// In-memory storage with simulated-cost accounting (single "server").
class MemStorage final : public Storage {
 public:
  explicit MemStorage(CostModel model = CostModel{})
      : model_(model), device_(&model_) {}

  [[nodiscard]] Status read_at(std::uint64_t offset, std::span<std::byte> out) override {
    return device_.read(offset, out);
  }
  [[nodiscard]] Status write_at(std::uint64_t offset,
                  std::span<const std::byte> data) override {
    return device_.write(offset, data);
  }
  [[nodiscard]] std::uint64_t size() const override { return device_.size(); }
  [[nodiscard]] Status truncate(std::uint64_t new_size) override {
    return device_.truncate(new_size);
  }
  [[nodiscard]] Status flush() override { return Status::ok(); }

  [[nodiscard]] const IoStats& stats() const { return device_.stats(); }

 private:
  CostModel model_;
  BlockDevice device_;
};

/// A real file on the host file system (the POSIX path of serial DRX).
class PosixStorage final : public Storage {
 public:
  /// Opens (creating if absent) `path` for read/write.
  [[nodiscard]] static Result<std::unique_ptr<PosixStorage>> open(const std::string& path);

  ~PosixStorage() override;
  PosixStorage(const PosixStorage&) = delete;
  PosixStorage& operator=(const PosixStorage&) = delete;

  [[nodiscard]] Status read_at(std::uint64_t offset, std::span<std::byte> out) override;
  [[nodiscard]] Status write_at(std::uint64_t offset,
                  std::span<const std::byte> data) override;
  [[nodiscard]] std::uint64_t size() const override { return size_; }
  [[nodiscard]] Status truncate(std::uint64_t new_size) override;
  [[nodiscard]] Status flush() override;

 private:
  explicit PosixStorage(std::FILE* f, std::uint64_t size)
      : file_(f), size_(size) {}

  std::FILE* file_;
  std::uint64_t size_;
};

/// Adapter presenting a striped PFS file as Storage.
class PfsStorage final : public Storage {
 public:
  explicit PfsStorage(FileHandle handle) : handle_(std::move(handle)) {
    DRX_CHECK(handle_.valid());
  }

  [[nodiscard]] Status read_at(std::uint64_t offset, std::span<std::byte> out) override {
    return handle_.read_at(offset, out);
  }
  [[nodiscard]] Status write_at(std::uint64_t offset,
                  std::span<const std::byte> data) override {
    return handle_.write_at(offset, data);
  }
  [[nodiscard]] std::uint64_t size() const override { return handle_.size(); }
  [[nodiscard]] Status truncate(std::uint64_t new_size) override {
    return handle_.truncate(new_size);
  }
  [[nodiscard]] Status flush() override { return Status::ok(); }

 private:
  FileHandle handle_;
};

}  // namespace drx::pfs
