// The parallel file system simulator (PVFS2-equivalent substrate).
//
// A Pfs instance models one file system deployment: a set of I/O servers
// and a namespace of striped files. Each file is divided into fixed-size
// stripes distributed round-robin over the servers; each (file, server)
// pair is a private *datafile* (a BlockDevice), exactly as PVFS2 lays data
// out. Client requests are split at stripe boundaries, serviced per server
// under a per-server lock, and charged to that server's simulated clock.
//
// Thread model: every method is safe to call concurrently from simpi
// rank-threads; per-server mutexes serialize device access (a real server
// services one request at a time), and a namespace mutex guards the file
// table.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pfs/block_device.hpp"
#include "pfs/cost_model.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace drx::pfs {

struct PfsConfig {
  int num_servers = 4;
  std::uint64_t stripe_size = 64 * 1024;
  CostModel cost;
};

class Pfs;

/// An open striped file. Cheap handle; the state lives in the Pfs.
class FileHandle {
 public:
  FileHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Reads [offset, offset+out.size()); fails past EOF.
  [[nodiscard]] Status read_at(std::uint64_t offset, std::span<std::byte> out);

  /// Writes, extending and zero-filling as needed.
  [[nodiscard]] Status write_at(std::uint64_t offset, std::span<const std::byte> data);

  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] Status truncate(std::uint64_t new_size);

  [[nodiscard]] std::uint64_t stripe_size() const;

 private:
  friend class Pfs;
  struct State;
  explicit FileHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Pfs {
 public:
  explicit Pfs(PfsConfig config);
  ~Pfs();

  Pfs(const Pfs&) = delete;
  Pfs& operator=(const Pfs&) = delete;

  Result<FileHandle> create(const std::string& name, bool overwrite = false);
  [[nodiscard]] Result<FileHandle> open(const std::string& name);
  [[nodiscard]] bool exists(const std::string& name) const;
  [[nodiscard]] Status remove(const std::string& name);
  [[nodiscard]] std::vector<std::string> list() const;

  [[nodiscard]] int num_servers() const noexcept {
    return config_.num_servers;
  }
  [[nodiscard]] const PfsConfig& config() const noexcept { return config_; }

  /// Per-server statistics snapshot (index = server id).
  [[nodiscard]] std::vector<IoStats> server_stats() const;

  /// Sum of per-server stats.
  [[nodiscard]] IoStats total_stats() const;

  /// Simulated elapsed time of the phase between two snapshots: the
  /// maximum per-server busy-time delta (servers work in parallel; the
  /// busiest one gates completion).
  static double phase_elapsed_us(const std::vector<IoStats>& before,
                                 const std::vector<IoStats>& after);

  struct Server;  ///< implementation detail, public for FileHandle::State

 private:

  PfsConfig config_;
  std::vector<std::unique_ptr<Server>> servers_;

  mutable util::Mutex ns_mu_;
  std::map<std::string, std::shared_ptr<FileHandle::State>> files_
      DRX_GUARDED_BY(ns_mu_);
};

}  // namespace drx::pfs
