#include "pfs/block_device.hpp"

#include <cstring>

namespace drx::pfs {

void BlockDevice::charge(std::uint64_t offset, std::uint64_t nbytes,
                         bool is_write) {
  double us = model_->request_overhead_us + model_->network_latency_us;
  if (offset != head_) {
    us += model_->seek_us;
    ++stats_.seeks;
  }
  us += static_cast<double>(nbytes) *
        (model_->disk_per_byte_us + model_->network_per_byte_us);
  stats_.busy_us += us;
  head_ = offset + nbytes;
  if (is_write) {
    ++stats_.write_requests;
    stats_.bytes_written += nbytes;
  } else {
    ++stats_.read_requests;
    stats_.bytes_read += nbytes;
  }
}

Status BlockDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  if (offset + out.size() > data_.size()) {
    return Status(ErrorCode::kOutOfRange, "read past end of datafile");
  }
  charge(offset, out.size(), /*is_write=*/false);
  std::memcpy(out.data(), data_.data() + offset, out.size());
  return Status::ok();
}

Status BlockDevice::write(std::uint64_t offset,
                          std::span<const std::byte> data) {
  const std::uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(end);  // zero-fills the gap
  charge(offset, data.size(), /*is_write=*/true);
  std::memcpy(data_.data() + offset, data.data(), data.size());
  return Status::ok();
}

Status BlockDevice::truncate(std::uint64_t new_size) {
  data_.resize(new_size);
  if (head_ > new_size) head_ = new_size;
  return Status::ok();
}

}  // namespace drx::pfs
