#include "pfs/block_device.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace drx::pfs {

void BlockDevice::charge(std::uint64_t offset, std::uint64_t nbytes,
                         bool is_write) {
  double us = model_->request_overhead_us + model_->network_latency_us;
  const bool seeked = offset != head_;
  if (seeked) {
    us += model_->seek_us;
    ++stats_.seeks;
  }
  us += static_cast<double>(nbytes) *
        (model_->disk_per_byte_us + model_->network_per_byte_us);
  stats_.busy_us += us;
  head_ = offset + nbytes;
  if (is_write) {
    ++stats_.write_requests;
    stats_.bytes_written += nbytes;
  } else {
    ++stats_.read_requests;
    stats_.bytes_read += nbytes;
  }

  // Device costs are also charged to the *calling rank's* obs registry, so
  // a collective's per-rank trace/metrics carry the seeks and busy-time it
  // caused — the causal link the ad-hoc IoStats never had.
  static const obs::MetricId kReads = obs::counter_id("pfs.read_requests");
  static const obs::MetricId kWrites = obs::counter_id("pfs.write_requests");
  static const obs::MetricId kBytesRead = obs::counter_id("pfs.bytes_read");
  static const obs::MetricId kBytesWritten =
      obs::counter_id("pfs.bytes_written");
  static const obs::MetricId kSeeks = obs::counter_id("pfs.seeks");
  static const obs::MetricId kBusyUs = obs::counter_id("pfs.busy_us");
  static const obs::MetricId kRequestBytes =
      obs::histogram_id("pfs.request_bytes");
  obs::Registry& reg = obs::registry();
  if (seeked) reg.counter(kSeeks).add();
  reg.counter(kBusyUs).add(static_cast<std::uint64_t>(us));
  if (is_write) {
    reg.counter(kWrites).add();
    reg.counter(kBytesWritten).add(nbytes);
  } else {
    reg.counter(kReads).add();
    reg.counter(kBytesRead).add(nbytes);
  }
  reg.histogram(kRequestBytes).observe(nbytes);
}

Status BlockDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  if (offset + out.size() > data_.size()) {
    return Status(ErrorCode::kOutOfRange, "read past end of datafile");
  }
  charge(offset, out.size(), /*is_write=*/false);
  // Empty spans may carry a null data(), which memcpy must never see.
  if (!out.empty()) {
    std::memcpy(out.data(), data_.data() + offset, out.size());
  }
  return Status::ok();
}

Status BlockDevice::write(std::uint64_t offset,
                          std::span<const std::byte> data) {
  const std::uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(end);  // zero-fills the gap
  charge(offset, data.size(), /*is_write=*/true);
  if (!data.empty()) {
    std::memcpy(data_.data() + offset, data.data(), data.size());
  }
  return Status::ok();
}

Status BlockDevice::truncate(std::uint64_t new_size) {
  data_.resize(new_size);
  if (head_ > new_size) head_ = new_size;
  return Status::ok();
}

}  // namespace drx::pfs
