#include "pfs/pfs.hpp"

#include <algorithm>
#include <cstring>

#include "obs/opctx.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/checked.hpp"

namespace drx::pfs {

/// An I/O server: a service point that handles one request at a time.
/// The mutex guards the server's slice of every file: each (file, server)
/// datafile in FileHandle::State, which GUARDED_BY cannot express across
/// structs (the static contract lives in the access pattern below: every
/// datafiles[s] touch holds servers[s]->mu).
struct Pfs::Server {
  // drx-lint: allow(unannotated-mutex-member) guards fields of another struct
  util::Mutex mu;
};

/// Striped file state: one datafile (BlockDevice) per server, plus the
/// logical size. Holds shared ownership of the servers so handles stay
/// valid for the life of the Pfs.
struct FileHandle::State {
  State(const PfsConfig& config,
        std::vector<std::shared_ptr<Pfs::Server>> srv)
      : cost(config.cost), stripe(config.stripe_size), servers(std::move(srv)) {
    datafiles.reserve(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i) {
      datafiles.push_back(std::make_unique<BlockDevice>(&cost));
    }
  }

  CostModel cost;
  std::uint64_t stripe;
  std::vector<std::shared_ptr<Pfs::Server>> servers;
  std::vector<std::unique_ptr<BlockDevice>> datafiles;

  util::Mutex size_mu;
  std::uint64_t logical_size DRX_GUARDED_BY(size_mu) = 0;

  /// One scatter/gather piece of a server request: `length` bytes at
  /// `buf_offset` in the caller's buffer.
  struct Piece {
    std::uint64_t buf_offset;
    std::uint64_t length;
  };

  /// One request to one server: a locally-contiguous datafile range served
  /// by a single device access, gathered from / scattered to possibly
  /// discontiguous caller-buffer pieces (the iovec a real PFS client
  /// ships with the request).
  struct Segment {
    std::size_t server;
    std::uint64_t local_offset;  ///< offset within the server's datafile
    std::uint64_t length;
    std::vector<Piece> pieces;
  };

  /// Splits a global byte range at stripe boundaries and coalesces
  /// locally-contiguous runs per server (one request per run, as a real
  /// PFS client would issue). Runs of different servers interleave in the
  /// global range, so each run's buffer pieces are discontiguous.
  [[nodiscard]] std::vector<Segment> map_range(std::uint64_t offset,
                                               std::uint64_t length) const {
    std::vector<Segment> segs;
    // Index of the open segment per server, or npos.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::size_t> open(servers.size(), kNone);
    const std::uint64_t n = servers.size();
    std::uint64_t pos = offset;
    std::uint64_t remaining = length;
    std::uint64_t buf = 0;
    while (remaining > 0) {
      const std::uint64_t stripe_idx = pos / stripe;
      const std::uint64_t within = pos % stripe;
      const std::uint64_t take = std::min(remaining, stripe - within);
      const std::size_t server = static_cast<std::size_t>(stripe_idx % n);
      const std::uint64_t local = (stripe_idx / n) * stripe + within;
      std::size_t& idx = open[server];
      if (idx != kNone &&
          segs[idx].local_offset + segs[idx].length == local) {
        segs[idx].length += take;
        segs[idx].pieces.push_back(Piece{buf, take});
      } else {
        idx = segs.size();
        segs.push_back(Segment{server, local, take, {Piece{buf, take}}});
      }
      pos += take;
      buf += take;
      remaining -= take;
    }
    return segs;
  }
};

Status FileHandle::read_at(std::uint64_t offset, std::span<std::byte> out) {
  DRX_CHECK(valid());
  obs::ScopedSpan span("pfs.read", "pfs", out.size());
  obs::StageTimer io(obs::Stage::kIoService);
  {
    util::MutexLock lock(state_->size_mu);
    if (checked_add(offset, out.size()) > state_->logical_size) {
      return Status(ErrorCode::kOutOfRange, "read past end of file");
    }
  }
  std::vector<std::byte> staging;
  for (const auto& seg : state_->map_range(offset, out.size())) {
    staging.resize(checked_size(seg.length));
    obs::profile_pfs(/*write=*/false,
                     static_cast<std::uint32_t>(seg.server), seg.length);
    {
      obs::ScopedSpan seg_span("pfs.server_read", "pfs", seg.length);
      util::MutexLock lock(state_->servers[seg.server]->mu);
      BlockDevice& device = *state_->datafiles[seg.server];
      // The range is inside the logical file size (checked above) but may
      // cross a sparse hole whose stripes were never materialized on this
      // server; holes read as zeros.
      const std::uint64_t end = seg.local_offset + seg.length;
      if (end > device.size()) {
        DRX_RETURN_IF_ERROR(device.truncate(end));
      }
      DRX_RETURN_IF_ERROR(device.read(seg.local_offset, staging));
    }
    std::uint64_t run = 0;
    for (const auto& piece : seg.pieces) {
      std::memcpy(out.data() + piece.buf_offset, staging.data() + run,
                  checked_size(piece.length));
      run += piece.length;
    }
  }
  return Status::ok();
}

Status FileHandle::write_at(std::uint64_t offset,
                            std::span<const std::byte> data) {
  DRX_CHECK(valid());
  obs::ScopedSpan span("pfs.write", "pfs", data.size());
  obs::StageTimer io(obs::Stage::kIoService);
  std::vector<std::byte> staging;
  for (const auto& seg : state_->map_range(offset, data.size())) {
    staging.resize(checked_size(seg.length));
    std::uint64_t run = 0;
    for (const auto& piece : seg.pieces) {
      std::memcpy(staging.data() + run, data.data() + piece.buf_offset,
                  checked_size(piece.length));
      run += piece.length;
    }
    obs::profile_pfs(/*write=*/true,
                     static_cast<std::uint32_t>(seg.server), seg.length);
    obs::ScopedSpan seg_span("pfs.server_write", "pfs", seg.length);
    util::MutexLock lock(state_->servers[seg.server]->mu);
    DRX_RETURN_IF_ERROR(
        state_->datafiles[seg.server]->write(seg.local_offset, staging));
  }
  util::MutexLock lock(state_->size_mu);
  state_->logical_size =
      std::max(state_->logical_size, checked_add(offset, data.size()));
  return Status::ok();
}

std::uint64_t FileHandle::size() const {
  DRX_CHECK(valid());
  util::MutexLock lock(state_->size_mu);
  return state_->logical_size;
}

Status FileHandle::truncate(std::uint64_t new_size) {
  DRX_CHECK(valid());
  util::MutexLock size_lock(state_->size_mu);
  // Resize every datafile to exactly the portion of new_size it holds;
  // growth zero-fills (sparse-file semantics).
  for (std::size_t s = 0; s < state_->servers.size(); ++s) {
    util::MutexLock lock(state_->servers[s]->mu);
    const std::uint64_t n = state_->servers.size();
    const std::uint64_t full_stripes = new_size / state_->stripe;
    const std::uint64_t rem = new_size % state_->stripe;
    std::uint64_t local = (full_stripes / n) * state_->stripe;
    const std::uint64_t last_server = full_stripes % n;
    if (s < last_server) local += state_->stripe;
    if (s == last_server) local += rem;
    DRX_RETURN_IF_ERROR(state_->datafiles[s]->truncate(local));
  }
  state_->logical_size = new_size;
  return Status::ok();
}

std::uint64_t FileHandle::stripe_size() const {
  DRX_CHECK(valid());
  return state_->stripe;
}

Pfs::Pfs(PfsConfig config) : config_(config) {
  DRX_CHECK(config_.num_servers >= 1);
  DRX_CHECK(config_.stripe_size >= 1);
  servers_.reserve(static_cast<std::size_t>(config_.num_servers));
  for (int i = 0; i < config_.num_servers; ++i) {
    servers_.push_back(std::make_unique<Server>());
  }
}

Pfs::~Pfs() = default;

Result<FileHandle> Pfs::create(const std::string& name, bool overwrite) {
  util::MutexLock lock(ns_mu_);
  if (files_.contains(name) && !overwrite) {
    return Status(ErrorCode::kAlreadyExists, "file exists: " + name);
  }
  std::vector<std::shared_ptr<Server>> shared_servers;
  shared_servers.reserve(servers_.size());
  for (auto& s : servers_) {
    shared_servers.push_back(
        std::shared_ptr<Server>(s.get(), [](Server*) {}));
  }
  auto state = std::make_shared<FileHandle::State>(
      config_, std::move(shared_servers));
  files_[name] = state;
  return FileHandle(state);
}

Result<FileHandle> Pfs::open(const std::string& name) {
  util::MutexLock lock(ns_mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status(ErrorCode::kNotFound, "no such file: " + name);
  }
  return FileHandle(it->second);
}

bool Pfs::exists(const std::string& name) const {
  util::MutexLock lock(ns_mu_);
  return files_.contains(name);
}

Status Pfs::remove(const std::string& name) {
  util::MutexLock lock(ns_mu_);
  if (files_.erase(name) == 0) {
    return Status(ErrorCode::kNotFound, "no such file: " + name);
  }
  return Status::ok();
}

std::vector<std::string> Pfs::list() const {
  util::MutexLock lock(ns_mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

std::vector<IoStats> Pfs::server_stats() const {
  util::MutexLock lock(ns_mu_);
  std::vector<IoStats> stats(servers_.size());
  for (const auto& [_, state] : files_) {
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      util::MutexLock server_lock(servers_[s]->mu);
      stats[s] += state->datafiles[s]->stats();
    }
  }
  return stats;
}

IoStats Pfs::total_stats() const {
  IoStats total;
  for (const IoStats& s : server_stats()) total += s;
  return total;
}

double Pfs::phase_elapsed_us(const std::vector<IoStats>& before,
                             const std::vector<IoStats>& after) {
  DRX_CHECK(before.size() == after.size());
  double max_us = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    max_us = std::max(max_us, after[i].busy_us - before[i].busy_us);
  }
  return max_us;
}

}  // namespace drx::pfs
