#include "pfs/storage.hpp"

#include <cerrno>
#include <cstring>

namespace drx::pfs {

Result<std::unique_ptr<PosixStorage>> PosixStorage::open(
    const std::string& path) {
  // "r+b" requires the file to exist; fall back to "w+b" to create it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status(ErrorCode::kIoError,
                  "cannot open " + path + ": " + std::strerror(errno));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status(ErrorCode::kIoError, "seek failed on " + path);
  }
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return Status(ErrorCode::kIoError, "ftell failed on " + path);
  }
  return std::unique_ptr<PosixStorage>(
      new PosixStorage(f, static_cast<std::uint64_t>(end)));
}

PosixStorage::~PosixStorage() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PosixStorage::read_at(std::uint64_t offset, std::span<std::byte> out) {
  if (offset + out.size() > size_) {
    return Status(ErrorCode::kOutOfRange, "read past end of file");
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status(ErrorCode::kIoError, "seek failed");
  }
  if (std::fread(out.data(), 1, out.size(), file_) != out.size()) {
    return Status(ErrorCode::kIoError, "short read");
  }
  return Status::ok();
}

Status PosixStorage::write_at(std::uint64_t offset,
                              std::span<const std::byte> data) {
  if (offset > size_) {
    // Zero-fill the gap explicitly for portable sparse-write semantics.
    if (std::fseek(file_, static_cast<long>(size_), SEEK_SET) != 0) {
      return Status(ErrorCode::kIoError, "seek failed");
    }
    std::vector<std::byte> zeros(
        static_cast<std::size_t>(offset - size_), std::byte{0});
    if (std::fwrite(zeros.data(), 1, zeros.size(), file_) != zeros.size()) {
      return Status(ErrorCode::kIoError, "short write (gap fill)");
    }
  } else if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status(ErrorCode::kIoError, "seek failed");
  }
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status(ErrorCode::kIoError, "short write");
  }
  size_ = std::max(size_, offset + data.size());
  return Status::ok();
}

Status PosixStorage::truncate(std::uint64_t new_size) {
  // C stdio has no portable truncate; emulate growth (shrink is only used
  // by tests, which run on MemStorage). Growth: extend with zeros.
  if (new_size > size_) {
    std::vector<std::byte> zeros(1, std::byte{0});
    DRX_RETURN_IF_ERROR(write_at(new_size - 1, zeros));
    return Status::ok();
  }
  if (new_size < size_) {
    return Status(ErrorCode::kUnsupported,
                  "PosixStorage does not support shrinking");
  }
  return Status::ok();
}

Status PosixStorage::flush() {
  if (std::fflush(file_) != 0) {
    return Status(ErrorCode::kIoError, "fflush failed");
  }
  return Status::ok();
}

}  // namespace drx::pfs
