// Deterministic I/O cost model for the PFS simulator.
//
// The reproduction environment has one CPU core and no cluster, so the
// performance axis of every experiment is *simulated* service time: each
// I/O server accumulates busy-time per the model below, and a parallel
// phase costs the maximum busy-time across servers (the straggler).
// The model captures exactly the effects the paper reasons about — seeks
// caused by discontiguous access, bandwidth proportional to bytes, and
// per-request overheads that collective I/O amortizes.
#pragma once

#include <cstdint>

namespace drx::pfs {

struct CostModel {
  /// Head reposition cost charged when a request's offset differs from the
  /// current head position of the datafile (avg seek + rotational delay).
  double seek_us = 8000.0;

  /// Per-byte transfer cost; 0.01 us/byte == 100 MB/s disk streaming.
  double disk_per_byte_us = 0.01;

  /// Fixed server-side cost per request (syscall, queueing, metadata).
  double request_overhead_us = 50.0;

  /// Client<->server round-trip latency charged once per request.
  double network_latency_us = 100.0;

  /// Per-byte network cost; 0.001 us/byte == 1 GB/s interconnect.
  double network_per_byte_us = 0.001;
};

/// Counters exposed per server and aggregated per file system.
struct IoStats {
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t seeks = 0;
  double busy_us = 0.0;  ///< accumulated service time under the cost model

  IoStats& operator+=(const IoStats& o) {
    read_requests += o.read_requests;
    write_requests += o.write_requests;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    seeks += o.seeks;
    busy_us += o.busy_us;
    return *this;
  }
  friend IoStats operator-(IoStats a, const IoStats& b) {
    a.read_requests -= b.read_requests;
    a.write_requests -= b.write_requests;
    a.bytes_read -= b.bytes_read;
    a.bytes_written -= b.bytes_written;
    a.seeks -= b.seeks;
    a.busy_us -= b.busy_us;
    return a;
  }
};

}  // namespace drx::pfs
