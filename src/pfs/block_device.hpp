// A simulated disk: byte-addressable, grow-on-write storage with a moving
// head. One BlockDevice backs one datafile (one file's stripes on one I/O
// server), mirroring PVFS2's per-server datafile layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pfs/cost_model.hpp"
#include "util/error.hpp"

namespace drx::pfs {

class BlockDevice {
 public:
  explicit BlockDevice(const CostModel* model) : model_(model) {
    DRX_CHECK(model != nullptr);
  }

  /// Reads [offset, offset+out.size()); error if the range passes EOF.
  [[nodiscard]] Status read(std::uint64_t offset, std::span<std::byte> out);

  /// Writes at offset, zero-filling any gap (sparse write semantics).
  [[nodiscard]] Status write(std::uint64_t offset, std::span<const std::byte> data);

  [[nodiscard]] Status truncate(std::uint64_t new_size);

  [[nodiscard]] std::uint64_t size() const noexcept { return data_.size(); }
  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }

 private:
  /// Charges seek (if the head moved) + transfer + request costs.
  void charge(std::uint64_t offset, std::uint64_t nbytes, bool is_write);

  const CostModel* model_;
  std::vector<std::byte> data_;
  std::uint64_t head_ = 0;  ///< byte position after the last access
  IoStats stats_;
};

}  // namespace drx::pfs
