// Array-server session layer (docs/SERVING.md; ROADMAP item 1).
//
// The paper's premise is parallel access to ONE out-of-core extendible
// array; every workload before this layer was a fixed set of ranks
// driving the file directly. drx::serve decouples logical clients from
// worker threads: M sessions (M >> threads) submit mixed
// read/write/extend/prefetch requests against a shared array through a
// bounded submission queue (DRX_SERVE_QUEUE_DEPTH) multiplexed onto one
// AsyncIoPool, on top of the sharded ChunkCache (DRX_CACHE_SHARDS) whose
// lock-free resident-read fast path keeps concurrent point/box reads off
// the shard mutexes.
//
// Concurrency model:
//  - read / write / prefetch requests hold the structure lock SHARED:
//    they may interleave freely (the sharded cache serializes per-chunk
//    state; the storage layer is serialized by the cache's io mutex);
//  - extend holds it EXCLUSIVE: the cache is flushed first (a barrier
//    that drains the cache pool), then the array grows — so no
//    background fault or write-back can race the metadata mutation.
//  - a serve job never submits to its own pool (the bounded queue would
//    deadlock); cache I/O runs inline or on the cache's own pool.
//
// Observability: each request runs under a fresh "serve.request" op (per
// PR6 stage attribution), records its end-to-end latency in the
// serve.request.latency_us histogram, and — when the flight recorder is
// on — leaves an op event tagged with the session id, so drx_doctor can
// attribute tail latency to a session after a crash or SLO breach.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/chunk_cache.hpp"
#include "core/coords.hpp"
#include "core/drx_file.hpp"
#include "io/async_pool.hpp"
#include "obs/exporter.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace drx::serve {

enum class RequestType : std::uint8_t {
  kRead = 0,   ///< box read into caller memory
  kWrite,      ///< box write from request-owned bytes
  kExtend,     ///< grow one dimension (exclusive; flushes the cache first)
  kPrefetch,   ///< advisory box prefetch (background job class)
};

/// One client request. Reads scatter into `out`, which must stay valid
/// until the request completes (future resolved / completion invoked).
/// Writes own their payload (`data`) so the client may retire its buffer
/// immediately after submit.
struct Request {
  RequestType type = RequestType::kRead;
  core::Box box{core::Index{}, core::Index{}};
  core::MemoryOrder order = core::MemoryOrder::kRowMajor;
  std::span<std::byte> out{};        ///< kRead destination
  std::vector<std::byte> data{};     ///< kWrite payload
  std::size_t dim = 0;               ///< kExtend dimension
  std::uint64_t delta = 0;           ///< kExtend growth in elements
};

class Server;

/// A logical client of the server. Cheap: an id plus request counters —
/// open as many as the workload has clients, regardless of the worker
/// count. Thread-safe; obtained from Server::open_session() and owned by
/// the server (valid until the server is destroyed).
class Session {
 public:
  using Completion = std::function<void(const Status&)>;

  /// Enqueues `req`; resolves with the request's Status. Blocks only
  /// when the submission queue is at capacity (backpressure).
  std::future<Status> submit(Request req);

  /// Callback variant: `done` runs on the worker right after the request.
  void submit(Request req, Completion done);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t failed() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  friend class Server;
  Session(Server* server, std::uint64_t id) : server_(server), id_(id) {}

  Server* server_;
  std::uint64_t id_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
};

class Server {
 public:
  struct Options {
    int workers = 2;             ///< pool threads (>= 1)
    std::size_t queue_depth = 0; ///< 0 = DRX_SERVE_QUEUE_DEPTH
    std::size_t cache_chunks = 64;  ///< shared ChunkCache capacity
    /// Array label on this server's scrape series (the `array` label in
    /// /metrics — docs/OBSERVABILITY.md "Live telemetry"). Keep it a
    /// short fixed identifier: label values are time-series keys.
    std::string name = "default";
    /// Cache engine config. shards == 0 resolves to DRX_CACHE_SHARDS,
    /// and — unlike a plain ChunkCache, whose unset default is the
    /// 1-shard legacy cache — an unset environment here defaults to 8
    /// shards: a server exists to be hit concurrently.
    core::ChunkCache::AsyncOptions cache{};
  };

  /// Serves `file` through a shared cache. The file must outlive the
  /// server; all access to it should go through this server while it
  /// exists (extend takes the structure lock only server-side).
  Server(core::DrxFile& file, const Options& options);

  /// Drains outstanding requests, publishes the per-session completion
  /// spread (serve.session.completed_min/max), and joins the workers.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a new logical client. Thread-safe; the Session lives as long
  /// as the server.
  Session& open_session();

  /// Barrier: every request submitted before the call has completed.
  void drain();

  /// Flushes the shared cache (write-back barrier).
  [[nodiscard]] Status flush();

  /// The shared cached array (benches/tests: shard stats, direct access).
  [[nodiscard]] core::CachedDrxFile& array() noexcept { return cached_; }

  [[nodiscard]] std::size_t sessions() const;

  /// Mirrors the per-session completion spread into the obs counters
  /// serve.sessions / serve.session.completed_min / _max, feeding the
  /// drx_doctor session-starvation detector. Called by the destructor;
  /// idempotent (publishes once).
  void publish_session_stats();

 private:
  friend class Session;

  std::future<Status> enqueue(Session& session, Request req);
  void enqueue(Session& session, Request req, Session::Completion done);
  [[nodiscard]] Status execute(Session& session, const Request& req,
                 std::uint64_t submit_ns);

  /// Appends this server's live gauges (per-session request counters
  /// capped at obs::kMaxSessionLabels + an "overflow" aggregate, queue
  /// depth, cache fast-hit ratio) for the metrics exporter.
  void scrape(std::vector<obs::ScrapeGauge>& out) const;

  core::DrxFile* file_;
  std::string name_;
  core::CachedDrxFile cached_;
  // drx-lint: allow(unannotated-mutex-member) guards the array's
  // structure (bounds/metadata owned by DrxFile, not a member here):
  // shared for read/write/prefetch, exclusive for extend.
  util::SharedMutex structure_mu_;
  io::AsyncIoPool pool_;
  mutable util::Mutex mu_;
  std::deque<std::unique_ptr<Session>> sessions_ DRX_GUARDED_BY(mu_);
  bool stats_published_ DRX_GUARDED_BY(mu_) = false;
  int scrape_handle_ = 0;  ///< exporter provider registration
};

}  // namespace drx::serve
