#include "serve/serve.hpp"

#include <algorithm>
#include <utility>

#include "io/config.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "obs/trace.hpp"

namespace drx::serve {

namespace {
const obs::MetricId kSessions = obs::counter_id("serve.sessions");
const obs::MetricId kSubmitted = obs::counter_id("serve.requests.submitted");
const obs::MetricId kCompleted = obs::counter_id("serve.requests.completed");
const obs::MetricId kFailed = obs::counter_id("serve.requests.failed");
const obs::MetricId kExtends = obs::counter_id("serve.extends");
const obs::MetricId kCompletedMin =
    obs::counter_id("serve.session.completed_min");
const obs::MetricId kCompletedMax =
    obs::counter_id("serve.session.completed_max");
const obs::MetricId kLatencyUs =
    obs::histogram_id("serve.request.latency_us");

core::ChunkCache::AsyncOptions resolve_cache(const Server::Options& options) {
  core::ChunkCache::AsyncOptions cache = options.cache;
  // A server's raison d'être is concurrent clients: when neither the
  // caller nor DRX_CACHE_SHARDS chose, default to 8 shards instead of
  // the plain-cache legacy single lock (docs/SERVING.md).
  if (cache.shards == 0 && io::cache_shards() == 0) cache.shards = 8;
  return cache;
}

// The cache layer deliberately clips boxes against the current bounds
// (partial reads are a feature for in-process callers); a remote client
// asking for data that does not exist deserves an error, not silent
// zeros. Checked under the structure lock so a concurrent extend can't
// move the goalposts mid-request.
Status check_in_bounds(const core::DrxFile& file, const core::Box& box) {
  if (box.rank() != file.rank()) {
    return Status(ErrorCode::kInvalidArgument,
                  "request box rank does not match the array");
  }
  const core::Shape& bounds = file.bounds();
  for (std::size_t d = 0; d < box.rank(); ++d) {
    if (box.hi[d] > bounds[d]) {
      return Status(ErrorCode::kOutOfRange,
                    "request box exceeds the array bounds");
    }
  }
  return Status::ok();
}

io::AsyncIoPool::Options resolve_pool(const Server::Options& options) {
  io::AsyncIoPool::Options pool;
  pool.threads = std::max(1, options.workers);
  pool.queue_capacity =
      options.queue_depth != 0 ? options.queue_depth : io::serve_queue_depth();
  return pool;
}
}  // namespace

std::future<Status> Session::submit(Request req) {
  return server_->enqueue(*this, std::move(req));
}

void Session::submit(Request req, Completion done) {
  server_->enqueue(*this, std::move(req), std::move(done));
}

Server::Server(core::DrxFile& file, const Options& options)
    : file_(&file),
      name_(options.name),
      cached_(file, options.cache_chunks, resolve_cache(options)),
      pool_(resolve_pool(options)) {
  scrape_handle_ = obs::register_scrape_provider(
      [this](std::vector<obs::ScrapeGauge>& out) { scrape(out); });
}

Server::~Server() {
  // Unregister first: it blocks until no scrape is inside our callback,
  // after which the exporter can no longer observe a dying server.
  obs::unregister_scrape_provider(scrape_handle_);
  drain();
  publish_session_stats();
}

void Server::scrape(std::vector<obs::ScrapeGauge>& out) const {
  const auto gauge = [&](std::string_view metric, double value,
                         std::string session_label = {}) {
    obs::ScrapeGauge g;
    g.name = std::string(metric);
    g.labels.emplace_back("array", name_);
    if (!session_label.empty()) {
      g.labels.emplace_back("session", std::move(session_label));
    }
    g.value = value;
    out.push_back(std::move(g));
  };
  gauge("serve.queue.depth", static_cast<double>(pool_.queue_depth()));
  const core::ChunkCache::Stats cache = cached_.stats();
  const std::uint64_t accesses = cache.hits + cache.misses;
  gauge("serve.cache.fast_hit_ratio",
        accesses != 0 ? static_cast<double>(cache.fast_hits) /
                            static_cast<double>(accesses)
                      : 0.0);
  // Per-session series are the canonical cardinality hazard: a busy
  // server opens sessions per client. Emit the first kMaxSessionLabels
  // individually and fold the rest into one "overflow" aggregate so the
  // scrape stays bounded no matter how many clients connect.
  util::MutexLock lock(mu_);
  std::uint64_t over_submitted = 0;
  std::uint64_t over_completed = 0;
  std::uint64_t over_failed = 0;
  std::size_t overflowed = 0;
  for (const auto& session : sessions_) {
    if (session->id() < obs::kMaxSessionLabels) {
      const std::string label = std::to_string(session->id());
      gauge("serve.session.submitted",
            static_cast<double>(session->submitted()), label);
      gauge("serve.session.completed",
            static_cast<double>(session->completed()), label);
      gauge("serve.session.failed",
            static_cast<double>(session->failed()), label);
    } else {
      over_submitted += session->submitted();
      over_completed += session->completed();
      over_failed += session->failed();
      ++overflowed;
    }
  }
  if (overflowed != 0) {
    gauge("serve.session.submitted", static_cast<double>(over_submitted),
          "overflow");
    gauge("serve.session.completed", static_cast<double>(over_completed),
          "overflow");
    gauge("serve.session.failed", static_cast<double>(over_failed),
          "overflow");
  }
}

Session& Server::open_session() {
  util::MutexLock lock(mu_);
  const std::uint64_t id = sessions_.size();
  sessions_.push_back(
      std::unique_ptr<Session>(new Session(this, id)));
  obs::registry().counter(kSessions).add();
  return *sessions_.back();
}

void Server::drain() { pool_.drain(); }

Status Server::flush() { return cached_.flush(); }

std::size_t Server::sessions() const {
  util::MutexLock lock(mu_);
  return sessions_.size();
}

void Server::publish_session_stats() {
  util::MutexLock lock(mu_);
  if (stats_published_ || sessions_.empty()) return;
  stats_published_ = true;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  for (const auto& session : sessions_) {
    const std::uint64_t done = session->completed();
    min = std::min(min, done);
    max = std::max(max, done);
  }
  obs::registry().counter(kCompletedMin).add(min);
  obs::registry().counter(kCompletedMax).add(max);
}

std::future<Status> Server::enqueue(Session& session, Request req) {
  const std::uint64_t submit_ns = obs::trace_now_ns();
  session.submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter(kSubmitted).add();
  const io::AsyncIoPool::JobClass cls =
      req.type == RequestType::kPrefetch
          ? io::AsyncIoPool::JobClass::kBackground
          : io::AsyncIoPool::JobClass::kUrgent;
  // Jobs are std::function (copyable); the request moves into shared
  // ownership rather than forcing a deep copy of a write payload.
  auto shared = std::make_shared<Request>(std::move(req));
  return pool_.submit_with_future(
      obs::current_op(),
      [this, &session, shared, submit_ns] {
        return execute(session, *shared, submit_ns);
      },
      cls);
}

void Server::enqueue(Session& session, Request req, Session::Completion done) {
  const std::uint64_t submit_ns = obs::trace_now_ns();
  session.submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter(kSubmitted).add();
  const io::AsyncIoPool::JobClass cls =
      req.type == RequestType::kPrefetch
          ? io::AsyncIoPool::JobClass::kBackground
          : io::AsyncIoPool::JobClass::kUrgent;
  auto shared = std::make_shared<Request>(std::move(req));
  pool_.submit(
      obs::current_op(),
      [this, &session, shared, submit_ns] {
        return execute(session, *shared, submit_ns);
      },
      std::move(done), cls);
}

Status Server::execute(Session& session, const Request& req,
                       std::uint64_t submit_ns) {
  // Fresh op per request: stage attribution (lock_wait, cache_fault,
  // io_service...) inside the cache accrues to THIS request.
  obs::OpScope op("serve.request");
  if (obs::flight_enabled()) {
    // Tag the op with its session so post-hoc flight analysis can group
    // tail-latency requests by client.
    obs::flight_record(obs::FlightKind::kOp, "serve.session",
                       obs::trace_now_ns(), 0, session.id(),
                       obs::current_op().op, 0);
  }
  Status st;
  switch (req.type) {
    case RequestType::kRead: {
      util::ReaderMutexLock lock(structure_mu_);
      st = check_in_bounds(*file_, req.box);
      if (st.is_ok()) st = cached_.read_box(req.box, req.order, req.out);
      break;
    }
    case RequestType::kWrite: {
      util::ReaderMutexLock lock(structure_mu_);
      st = check_in_bounds(*file_, req.box);
      if (st.is_ok()) {
        st = cached_.write_box(req.box, req.order,
                               std::span<const std::byte>(req.data));
      }
      break;
    }
    case RequestType::kPrefetch: {
      util::ReaderMutexLock lock(structure_mu_);
      cached_.prefetch_box(req.box);
      break;
    }
    case RequestType::kExtend: {
      util::WriterMutexLock lock(structure_mu_);
      // Exclusive + flushed: the flush barrier drains the cache engine's
      // background jobs, so nothing races the metadata mutation below.
      st = cached_.flush();
      if (st.is_ok()) st = file_->extend(req.dim, req.delta);
      obs::registry().counter(kExtends).add();
      break;
    }
  }
  const std::uint64_t now = obs::trace_now_ns();
  obs::registry().histogram(kLatencyUs).observe((now - submit_ns) / 1000);
  session.completed_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter(kCompleted).add();
  if (!st.is_ok()) {
    session.failed_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter(kFailed).add();
  }
  return st;
}

}  // namespace drx::serve
