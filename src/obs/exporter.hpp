// Embedded metrics exporter (docs/OBSERVABILITY.md "Live telemetry").
//
// A single background thread owns a minimal HTTP/1.1 listener (loopback
// only) so a live drx process can be scraped while serving:
//
//   GET /metrics      Prometheus text exposition 0.0.4 — cumulative
//                     counters (rate() handles windowing on the scraper
//                     side) plus *windowed* histograms (obs/window.hpp)
//                     labeled window="<horizon>", plus provider gauges.
//   GET /json         drx-live JSON: cumulative live_snapshot().
//   GET /window.json  the drx-window document (drx_doctor --window).
//   GET /snapshot.bin binary MetricsSnapshot (drx_stats --watch diffs
//                     successive fetches of this).
//
// Enabled by DRX_METRICS_PORT (port number; 0 picks an ephemeral port) or
// programmatically via start_exporter(). A port already in use does NOT
// abort the process: the exporter logs a warning and stays disabled —
// telemetry must never take the service down.
//
// Cardinality is bounded by design: label values come only from
// fixed-size structure (shard indexes parsed from core.cache.shard.<i>.*
// counters) and from scrape providers, which must cap their own label
// sets (drx::serve::Server emits at most kMaxSessionLabels per-session
// series plus one "overflow" aggregate). The exporter additionally drops
// provider gauges past kMaxProviderGauges and counts the drops.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace drx::obs {

/// One labeled gauge contributed by a scrape provider. `name` is a
/// dotted drx metric name; the exporter sanitizes it for Prometheus.
struct ScrapeGauge {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

/// Providers append gauges on every scrape. Called with an internal
/// provider mutex held: callbacks must not re-enter the exporter and
/// should only read cheap state (atomics, immutable config).
using ScrapeProviderFn = std::function<void(std::vector<ScrapeGauge>&)>;

/// Per-provider series cap; gauges beyond it are dropped (counted in
/// obs.exporter.gauges_dropped).
inline constexpr std::size_t kMaxProviderGauges = 256;

/// Convention for per-session labels (enforced by drx::serve::Server):
/// at most this many distinct session label values, then one aggregate
/// with session="overflow".
inline constexpr std::size_t kMaxSessionLabels = 32;

/// Registers a provider; returns a handle for unregister. Safe from any
/// thread, before or after the exporter starts (providers also feed
/// render_prometheus() directly, exporter running or not).
int register_scrape_provider(ScrapeProviderFn fn);

/// Removes a provider. Blocks until no scrape is inside provider
/// callbacks, so the provider's captured state may be destroyed
/// immediately after this returns (Server's destructor relies on that).
void unregister_scrape_provider(int handle);

/// Starts the listener on 127.0.0.1:`port` (0 = ephemeral) and returns
/// the bound port. Fails (kFailedPrecondition if already running,
/// kIoError if the port is taken or socket setup fails).
[[nodiscard]] Result<std::uint16_t> start_exporter(std::uint16_t port);

/// Stops the listener and joins the thread. No-op when not running.
void stop_exporter();

/// Bound port of the running exporter, or 0 when not running.
[[nodiscard]] std::uint16_t exporter_port() noexcept;

/// The /metrics body (exposed for tests and offline rendering).
[[nodiscard]] std::string render_prometheus();

/// The /json body: {"format":"drx-live",...} around the cumulative
/// live snapshot.
[[nodiscard]] std::string render_live_json();

/// Minimal HTTP GET against a drx exporter (drx_top, drx_stats --watch,
/// bench self-scrape, tests). Returns the response body on status 200;
/// kIoError on connect/timeout errors or a non-200 response.
[[nodiscard]] Result<std::string> http_get(const std::string& host, std::uint16_t port,
                             const std::string& path, int timeout_ms = 2000);

}  // namespace drx::obs
