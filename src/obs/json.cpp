#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace drx::obs {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (need_comma_) out_.push_back(',');
  need_comma_ = true;
}

void JsonWriter::emit_string(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DRX_CHECK(!stack_.empty() && stack_.back() == Frame::kObject && !after_key_);
  stack_.pop_back();
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DRX_CHECK(!stack_.empty() && stack_.back() == Frame::kArray && !after_key_);
  stack_.pop_back();
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  DRX_CHECK(!stack_.empty() && stack_.back() == Frame::kObject && !after_key_);
  if (need_comma_) out_.push_back(',');
  emit_string(k);
  out_.push_back(':');
  need_comma_ = true;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  emit_string(s);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  // JSON has no NaN/Inf; clamp to null-free 0 so documents stay parseable.
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  DRX_CHECK_MSG(stack_.empty() && !after_key_,
                "JsonWriter::str() on an unbalanced document");
  return out_;
}

// ---- validation -----------------------------------------------------------

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  [[nodiscard]] bool eof() const { return pos >= s.size(); }
  [[nodiscard]] char peek() const { return s[pos]; }

  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                      s[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool string() {
    if (eof() || s[pos] != '"') return false;
    ++pos;
    while (!eof()) {
      const char c = s[pos];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (eof()) return false;
        const char e = s[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (eof() || std::isxdigit(static_cast<unsigned char>(s[pos])) == 0)
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;
  }

  bool number() {
    if (!eof() && s[pos] == '-') ++pos;
    if (eof() || std::isdigit(static_cast<unsigned char>(s[pos])) == 0)
      return false;
    if (s[pos] == '0') {
      ++pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    }
    if (!eof() && s[pos] == '.') {
      ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(s[pos])) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    }
    if (!eof() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (!eof() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(s[pos])) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

bool json_validate(std::string_view text) {
  Parser p{text};
  // drx-verify: allow(error-discipline) Parser::value() parses one JSON
  // value and returns bool — it is not util::Result.
  if (!p.value()) return false;
  p.skip_ws();
  return p.eof();
}

// ---- DOM parsing ----------------------------------------------------------

namespace {

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Same grammar as the validating Parser, but builds JsonValues. Kept as
/// a separate walker so the hot validation path stays allocation-free.
struct DomParser {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  [[nodiscard]] bool eof() const { return pos >= s.size(); }
  [[nodiscard]] char peek() const { return s[pos]; }

  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                      s[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) return false;
      const char c = s[pos++];
      std::uint32_t d = 0;
      if (c >= '0' && c <= '9') {
        d = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<std::uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<std::uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      out = out * 16 + d;
    }
    return true;
  }

  bool string(std::string& out) {
    out.clear();
    if (eof() || s[pos] != '"') return false;
    ++pos;
    while (!eof()) {
      const char c = s[pos];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos;
        continue;
      }
      ++pos;
      if (eof()) return false;
      const char e = s[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!literal("\\u")) return false;
            std::uint32_t lo = 0;
            if (!hex4(lo) || lo < 0xDC00 || lo > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // unpaired low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool number(double& out) {
    const std::size_t start = pos;
    if (!eof() && s[pos] == '-') ++pos;
    if (eof() || std::isdigit(static_cast<unsigned char>(s[pos])) == 0)
      return false;
    if (s[pos] == '0') {
      ++pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    }
    if (!eof() && s[pos] == '.') {
      ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(s[pos])) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    }
    if (!eof() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (!eof() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (eof() || std::isdigit(static_cast<unsigned char>(s[pos])) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
    }
    // The slice is a valid JSON number, which strtod always accepts.
    out = std::strtod(std::string(s.substr(start, pos - start)).c_str(),
                      nullptr);
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(out); break;
      case '[': ok = array(out); break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = string(out.string);
        break;
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        ok = literal("null");
        break;
      default:
        out.kind = JsonValue::Kind::kNumber;
        ok = number(out.number);
        break;
    }
    --depth;
    return ok;
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> json_parse(std::string_view text) {
  DomParser p{text};
  JsonValue root;
  if (!p.value(root)) {
    return Status(ErrorCode::kCorrupt,
                  "malformed JSON at byte " + std::to_string(p.pos));
  }
  p.skip_ws();
  if (!p.eof()) {
    return Status(ErrorCode::kCorrupt,
                  "trailing garbage after JSON document at byte " +
                      std::to_string(p.pos));
  }
  return root;
}

}  // namespace drx::obs
