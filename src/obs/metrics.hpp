// Process-wide metrics for the DRX stack (ROADMAP: the observability
// spine every perf PR reports against).
//
// Design:
//  - Metric *names* are interned once into process-global ids
//    (`counter_id` / `histogram_id`); call sites cache the id in a
//    function-local static so the steady-state cost of an increment is one
//    relaxed atomic add plus a shared-lock slot lookup.
//  - Metric *values* live in a Registry. There is one process registry
//    plus one registry per simulated rank: simpi::run installs a RankScope
//    on each rank thread, so counters incremented inside a rank body are
//    attributed to that rank. When a rank finishes, its registry folds
//    into the process registry, so whole-run totals survive the threads.
//  - Cross-rank aggregation for a live job goes through
//    MetricsSnapshot::serialize()/merge() (used by DrxMpFile::close() to
//    reduce all rank registries to rank 0).
//
// Naming scheme: `<layer>.<object>.<metric>` with layers `core`, `mpio`,
// `simpi`, `pfs` (see docs/OBSERVABILITY.md).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/sync.hpp"

namespace drx::obs {

class JsonWriter;

/// Process-global id of a named metric. Ids are dense and shared by every
/// registry; a counter id is never also a histogram id (checked).
using MetricId = std::uint32_t;

MetricId counter_id(std::string_view name);
MetricId histogram_id(std::string_view name);

/// Monotonic counter: one relaxed atomic, safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

inline constexpr std::size_t kHistogramBuckets = 64;

/// Fixed log2-bucket histogram: bucket i counts observations v with
/// bit_width(v) == i (bucket 0 holds v == 0). Suited to byte counts and
/// microsecond latencies, which span many decades.
class Histogram {
 public:
  void observe(std::uint64_t v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Adds another histogram's totals wholesale (registry/snapshot merge).
  void accumulate(std::uint64_t count, std::uint64_t sum,
                  const std::array<std::uint64_t, kHistogramBuckets>& buckets)
      noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// A point-in-time copy of a registry, mergeable and serializable (the
/// unit of cross-rank reduction and of on-disk metric dumps).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<HistogramSample> histograms;

  /// Adds `other` into this snapshot, matching metrics by name.
  void merge(const MetricsSnapshot& other);

  /// Value of a counter by name; 0 if absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static Result<MetricsSnapshot> deserialize(std::span<const std::byte> data);
};

/// `cur - base` metric-by-metric, saturating at 0 (a Registry::reset
/// between the two captures makes cur < base; a negative window would be
/// nonsense). Metrics absent from `base` pass through whole; zero-valued
/// results are dropped. This is the primitive the sliding-window views in
/// obs/window.hpp are built from: log2 histograms subtract bucket-wise
/// exactly as they merge.
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& cur,
                                             const MetricsSnapshot& base);

/// A set of metric values. Thread-safe; slot creation is lazy.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(MetricId id);
  Histogram& histogram(MetricId id);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Adds every metric of this registry into `dst` (used to fold a rank
  /// registry into the process registry).
  void merge_into(Registry& dst) const;

  /// Zeroes every metric in place (bench/test isolation). Slot objects
  /// are never destroyed, so references returned by counter()/histogram()
  /// and the lock-free slot table below stay valid across resets.
  void reset();

 private:
  /// Dense low ids resolve through this lock-free table once the slot is
  /// created: the steady-state cost of counter()/histogram() is a single
  /// acquire load instead of a SharedMutex round-trip — metric bumps sit
  /// on the serving fast path (docs/SERVING.md). Ids past the table fall
  /// back to the locked vectors.
  static constexpr std::size_t kFastIds = 1024;

  mutable util::SharedMutex mu_;
  // index = MetricId
  std::vector<std::unique_ptr<Counter>> counters_ DRX_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Histogram>> histograms_ DRX_GUARDED_BY(mu_);
  // Published with release after the locked vectors own the object;
  // entries are only ever null -> non-null, and objects live until the
  // registry dies.
  std::array<std::atomic<Counter*>, kFastIds> fast_counters_{};
  std::array<std::atomic<Histogram*>, kFastIds> fast_histograms_{};
};

/// The registry increments should go to on this thread: the innermost
/// RankScope's registry, or the process registry outside any rank.
Registry& registry() noexcept;

/// The whole-process registry (rank registries fold into it on exit).
Registry& process_registry() noexcept;

/// Live whole-process view: the process registry merged with every rank
/// registry currently installed by a RankScope. This is what a sampler
/// thread reads mid-run, when rank totals have not folded yet.
[[nodiscard]] MetricsSnapshot live_snapshot();

/// Simulated rank of the calling thread, or -1 outside any RankScope.
int current_rank() noexcept;

/// Installs a per-rank registry + rank id on the current thread for the
/// scope's lifetime; folds the registry into the enclosing one (normally
/// the process registry) on destruction.
class RankScope {
 public:
  explicit RankScope(int rank);
  ~RankScope();
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

  [[nodiscard]] Registry& local() noexcept { return registry_; }

 private:
  Registry registry_;
  Registry* prev_registry_;
  int prev_rank_;
};

/// RAII timer: observes elapsed wall microseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId hist_id) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricId id_;
  std::uint64_t start_ns_;
};

// ---- derived statistics ---------------------------------------------------

/// Quantiles derived from the log2 buckets. A quantile is reported as the
/// upper bound of the bucket it falls in (2^i - 1), i.e. within 2x of the
/// true value — the right resolution for byte sizes and latencies that
/// span decades.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;  ///< serving-latency tail (docs/SERVING.md)
  std::uint64_t max = 0;  ///< upper bound of the highest occupied bucket
};

[[nodiscard]] HistogramSummary summarize_histogram(const HistogramSample& h);

/// Largest value log2 bucket `i` can hold: 2^i - 1 (bucket 0 holds 0).
/// Exposed for consumers that need real bucket edges — the Prometheus
/// `le` labels in obs/exporter.cpp and the SLO good-bucket cutoff in
/// obs/slo.cpp.
[[nodiscard]] std::uint64_t histogram_bucket_upper_bound(
    std::size_t i) noexcept;

// ---- rendering & cross-run plumbing ---------------------------------------

/// Fixed-width text table of a snapshot (drx_stats, drx_inspect --stats).
[[nodiscard]] std::string metrics_to_text(const MetricsSnapshot& snap);

/// Emits the snapshot as one JSON object {"counters":{...},
/// "histograms":{...}} into an open writer position expecting a value.
void metrics_to_json(const MetricsSnapshot& snap, JsonWriter& w);

/// Rank-0 result of the last cross-rank reduction (DrxMpFile::close()).
void set_aggregated_snapshot(MetricsSnapshot snap);
[[nodiscard]] MetricsSnapshot aggregated_snapshot();

}  // namespace drx::obs
