// Access profiling: sparse per-rank heatmaps over the chunk grid plus
// per-pfs-server and per-aggregator traffic tables (ROADMAP: the layer
// that shows *where* zone traffic lands, not just how much of it there
// was — the paper's balanced-partitioning story made observable).
//
// Profiling is off unless DRX_PROFILE=<path> is set (or a test installs a
// path via set_profile_path). When off, every record call is a single
// relaxed-atomic-bool branch — no locks, no allocation — so the hooks can
// stay in ChunkCache / DrxFile / drxmp / mpio / pfs hot paths permanently.
//
// Cells are sparse-binned: only (rank, chunk-address) pairs that saw
// traffic occupy memory, so extendible growth of the array never costs
// anything here. The JSON dump written at exit is parseable back with
// profile_from_json (drx_doctor's input path).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace drx::obs {

class JsonWriter;

namespace detail {
extern std::atomic<bool> g_profile_enabled;
void profile_chunk_slow(int op, std::uint64_t address, std::uint64_t bytes);
void profile_pfs_slow(bool write, std::uint32_t server, std::uint64_t bytes);
void profile_aggregator_slow(int rank, std::uint64_t runs,
                             std::uint64_t bytes);
void profile_rank_slow(int rank);
}  // namespace detail

/// True iff accesses are being recorded. The one branch on the fast path.
inline bool profile_enabled() noexcept {
  return detail::g_profile_enabled.load(std::memory_order_relaxed);
}

/// What happened to a chunk (the three heatmap layers).
enum class ChunkOp : std::uint8_t { kRead = 0, kWrite = 1, kCacheMiss = 2 };

/// Records one chunk access attributed to the calling thread's rank
/// (obs::current_rank(); -1 = host). `bytes` may be 0 for cache misses.
inline void profile_chunk(ChunkOp op, std::uint64_t address,
                          std::uint64_t bytes) noexcept {
  if (!profile_enabled()) return;
  detail::profile_chunk_slow(static_cast<int>(op), address, bytes);
}

/// Records one pfs server request attributed to the calling rank.
inline void profile_pfs(bool write, std::uint32_t server,
                        std::uint64_t bytes) noexcept {
  if (!profile_enabled()) return;
  detail::profile_pfs_slow(write, server, bytes);
}

/// Records aggregator device-access work done on behalf of `rank` (passed
/// explicitly: mpio runs may execute on pool threads outside RankScope).
inline void profile_aggregator(int rank, std::uint64_t runs,
                               std::uint64_t bytes) noexcept {
  if (!profile_enabled()) return;
  detail::profile_aggregator_slow(rank, runs, bytes);
}

/// Registers `rank` as a participant of the run (called by RankScope).
/// Ranks that then record no traffic still show up in the snapshot, so
/// the imbalance detectors see their zero load — an idle rank IS the
/// skew, not a missing sample.
inline void profile_rank(int rank) noexcept {
  if (!profile_enabled()) return;
  detail::profile_rank_slow(rank);
}

// ---- snapshotting & serialization -----------------------------------------

/// One (rank, chunk address) heatmap cell.
struct ChunkCell {
  int rank = -1;
  std::uint64_t address = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes = 0;
};

/// One (rank, pfs server) traffic cell.
struct PfsCell {
  int rank = -1;
  std::uint32_t server = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
};

/// Aggregated device-access work performed by one rank's aggregator.
struct AggCell {
  int rank = -1;
  std::uint64_t runs = 0;
  std::uint64_t bytes = 0;
};

/// Point-in-time copy of the profile tables, sorted by (rank, key).
struct ProfileSnapshot {
  std::vector<int> ranks;  ///< participating ranks (ascending), incl. idle
  std::vector<ChunkCell> chunk;
  std::vector<PfsCell> pfs;
  std::vector<AggCell> aggregator;

  [[nodiscard]] bool empty() const {
    return chunk.empty() && pfs.empty() && aggregator.empty();
  }
};

/// Overrides the output path (test hook; DRX_PROFILE is read once at
/// startup). A non-empty path enables recording; empty disables.
void set_profile_path(const std::string& path);
[[nodiscard]] std::string profile_path();

[[nodiscard]] ProfileSnapshot profile_snapshot();

/// Drops all recorded cells (test isolation).
void clear_profile();

/// Emits the snapshot as one JSON object (format "drx-profile" v1) into a
/// writer position expecting a value.
void profile_to_json(const ProfileSnapshot& snap, JsonWriter& w);

/// Parses a document produced by profile_to_json (drx_doctor ingestion).
[[nodiscard]] Result<ProfileSnapshot> profile_from_json(std::string_view text);

/// Writes the current snapshot as JSON to `path`.
[[nodiscard]] Status write_profile(const std::string& path);

/// write_profile() to the configured path (no-op status if none).
[[nodiscard]] Status flush_profile();

}  // namespace drx::obs
