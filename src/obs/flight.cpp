#include "obs/flight.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace drx::obs {

namespace detail {
// Always on: the whole point is that the recorder is running when the
// process dies unexpectedly. Fixed memory, no output unless something dumps.
std::atomic<bool> g_flight_enabled{true};
}  // namespace detail

namespace {

constexpr std::size_t kFlightRingSize = 512;  // records kept per thread
constexpr std::size_t kFlightThreads = 128;   // rings (threads) tracked
constexpr std::size_t kFlightPathMax = 512;

/// One flight record, all-atomic so a dump (possibly from another thread
/// or a signal handler) can read concurrently with a writer without locks
/// or TSan reports. `seq` is the torn-read guard: 0 while a writer is
/// mid-update, otherwise a process-wide monotonic sequence number stored
/// with release order after the payload.
struct FlightRecord {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint64_t> op{0};
  std::atomic<std::uint64_t> parent{0};
  std::atomic<std::int32_t> rank{-1};
  std::atomic<std::uint8_t> kind{0};
};

struct FlightRing {
  std::atomic<std::uint64_t> head{0};  ///< total pushes; slot = head % size
  std::uint32_t tid = 0;               ///< 1-based, fixed at registration
  FlightRecord records[kFlightRingSize];
};

// Ring registry: a fixed array of pointers published with release order.
// Rings are heap-allocated once per thread and intentionally never freed —
// a crash dump must be able to walk rings of threads that already exited.
std::atomic<FlightRing*> g_rings[kFlightThreads];
std::atomic<std::uint32_t> g_ring_count{0};
std::atomic<std::uint64_t> g_flight_seq{0};
std::atomic<std::uint64_t> g_record_count{0};

// Configured dump path, fixed storage so the signal path never allocates.
char g_flight_path[kFlightPathMax] = "drx-flight.json";
std::atomic<std::size_t> g_flight_path_len{
    sizeof("drx-flight.json") - 1};

FlightRing* ring_for_thread() noexcept {
  thread_local FlightRing* ring = [] {
    const std::uint32_t idx =
        g_ring_count.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kFlightThreads) return static_cast<FlightRing*>(nullptr);
    auto* r = new FlightRing;  // never freed (see registry comment)
    r->tid = idx + 1;
    g_rings[idx].store(r, std::memory_order_release);
    return r;
  }();
  return ring;
}

const char* kind_name(std::uint8_t kind) noexcept {
  switch (static_cast<FlightKind>(kind)) {
    case FlightKind::kSpan: return "span";
    case FlightKind::kFlowOut: return "flow_out";
    case FlightKind::kFlowIn: return "flow_in";
    case FlightKind::kOp: return "op";
  }
  return "unknown";
}

/// Snapshot of one record, or false if it was torn/empty.
struct RecordView {
  std::uint64_t seq, ts_ns, dur_ns, arg, op, parent;
  const char* name;
  std::int32_t rank;
  std::uint8_t kind;
};

bool read_record(const FlightRecord& rec, RecordView& out) noexcept {
  const std::uint64_t s1 = rec.seq.load(std::memory_order_acquire);
  if (s1 == 0) return false;
  out.name = rec.name.load(std::memory_order_relaxed);
  out.ts_ns = rec.ts_ns.load(std::memory_order_relaxed);
  out.dur_ns = rec.dur_ns.load(std::memory_order_relaxed);
  out.arg = rec.arg.load(std::memory_order_relaxed);
  out.op = rec.op.load(std::memory_order_relaxed);
  out.parent = rec.parent.load(std::memory_order_relaxed);
  out.rank = rec.rank.load(std::memory_order_relaxed);
  out.kind = rec.kind.load(std::memory_order_relaxed);
  const std::uint64_t s2 = rec.seq.load(std::memory_order_acquire);
  if (s1 != s2 || out.name == nullptr) return false;
  out.seq = s1;
  return true;
}

/// Minimal buffered fd writer usable from a signal handler: write(2) only,
/// hand-rolled decimal formatting, fixed stack buffers.
class SigWriter {
 public:
  explicit SigWriter(int fd) noexcept : fd_(fd) {}
  ~SigWriter() { flush(); }

  void put(const char* s) noexcept {
    for (; *s != '\0'; ++s) put_char(*s);
  }
  void put_u64(std::uint64_t v) noexcept {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put_char(digits[--n]);
  }
  void put_i32(std::int32_t v) noexcept {
    if (v < 0) {
      put_char('-');
      put_u64(static_cast<std::uint64_t>(-static_cast<std::int64_t>(v)));
    } else {
      put_u64(static_cast<std::uint64_t>(v));
    }
  }
  void flush() noexcept {
    std::size_t off = 0;
    while (off < len_) {
      const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len_ = 0;
  }

 private:
  void put_char(char c) noexcept {
    if (len_ == sizeof(buf_)) flush();
    buf_[len_++] = c;
  }
  int fd_;
  char buf_[1024];
  std::size_t len_ = 0;
};

/// Shared dump body: both the regular and the signal-safe entry points
/// funnel here; everything it does is async-signal-safe.
void dump_rings(SigWriter& w, const char* reason) noexcept {
  w.put("{\"format\":\"drx-flight\",\"version\":1,\"reason\":\"");
  w.put(reason);
  w.put("\",\"threads\":[");
  const std::uint32_t count = g_ring_count.load(std::memory_order_relaxed);
  bool first_thread = true;
  for (std::uint32_t i = 0; i < count && i < kFlightThreads; ++i) {
    const FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    if (!first_thread) w.put(",");
    first_thread = false;
    w.put("\n{\"tid\":");
    w.put_u64(ring->tid);
    w.put(",\"records\":[");
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t n =
        head < kFlightRingSize ? head : kFlightRingSize;
    const std::uint64_t base = head - n;  // oldest surviving push index
    bool first_rec = true;
    for (std::uint64_t j = 0; j < n; ++j) {
      const FlightRecord& rec =
          ring->records[(base + j) % kFlightRingSize];
      RecordView v{};
      if (!read_record(rec, v)) continue;
      if (!first_rec) w.put(",");
      first_rec = false;
      w.put("\n{\"seq\":");
      w.put_u64(v.seq);
      w.put(",\"kind\":\"");
      w.put(kind_name(v.kind));
      w.put("\",\"name\":\"");
      w.put(v.name);
      w.put("\",\"ts_ns\":");
      w.put_u64(v.ts_ns);
      w.put(",\"dur_ns\":");
      w.put_u64(v.dur_ns);
      w.put(",\"arg\":");
      w.put_u64(v.arg);
      w.put(",\"op\":");
      w.put_u64(v.op);
      w.put(",\"parent\":");
      w.put_u64(v.parent);
      w.put(",\"rank\":");
      w.put_i32(v.rank);
      w.put("}");
    }
    w.put("]}");
  }
  w.put("\n]}\n");
  w.flush();
}

// ---- fatal-signal plumbing -------------------------------------------------

struct sigaction g_old_segv;
struct sigaction g_old_abrt;
std::atomic<bool> g_handlers_installed{false};
std::atomic<bool> g_dumped_on_signal{false};

void flight_signal_handler(int sig, siginfo_t* /*info*/, void* /*uctx*/) {
  if (!g_dumped_on_signal.exchange(true)) {
    dump_flight_signal_safe(sig == SIGSEGV ? "fatal-signal:SIGSEGV"
                                           : "fatal-signal:SIGABRT");
  }
  // Chain: restore whoever was installed before us (sanitizer runtimes,
  // test harnesses) and re-deliver so the process still dies their way.
  ::sigaction(sig, sig == SIGSEGV ? &g_old_segv : &g_old_abrt, nullptr);
  ::raise(sig);
}

struct InstallAtInit {
  InstallAtInit() { install_flight_signal_handlers(); }
};
InstallAtInit g_install_at_init;

}  // namespace

void set_flight_enabled(bool enabled) noexcept {
  detail::g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

void set_flight_path(const std::string& path) noexcept {
  const std::size_t n =
      path.size() < kFlightPathMax - 1 ? path.size() : kFlightPathMax - 1;
  std::memcpy(g_flight_path, path.data(), n);
  g_flight_path[n] = '\0';
  g_flight_path_len.store(n, std::memory_order_release);
}

std::string flight_path() {
  const std::size_t n = g_flight_path_len.load(std::memory_order_acquire);
  return std::string(g_flight_path, n);
}

void flight_record(FlightKind kind, const char* name, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, std::uint64_t arg, std::uint64_t op,
                   std::uint64_t parent) noexcept {
  FlightRing* ring = ring_for_thread();
  if (ring == nullptr || name == nullptr) return;  // registry full
  const std::uint64_t slot =
      ring->head.fetch_add(1, std::memory_order_relaxed) % kFlightRingSize;
  FlightRecord& rec = ring->records[slot];
  const std::uint64_t seq =
      g_flight_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  rec.seq.store(0, std::memory_order_release);  // mark torn while updating
  rec.name.store(name, std::memory_order_relaxed);
  rec.ts_ns.store(ts_ns, std::memory_order_relaxed);
  rec.dur_ns.store(dur_ns, std::memory_order_relaxed);
  rec.arg.store(arg, std::memory_order_relaxed);
  rec.op.store(op, std::memory_order_relaxed);
  rec.parent.store(parent, std::memory_order_relaxed);
  rec.rank.store(current_rank(), std::memory_order_relaxed);
  rec.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  rec.seq.store(seq, std::memory_order_release);
  g_record_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t flight_record_count() noexcept {
  return g_record_count.load(std::memory_order_relaxed);
}

Status dump_flight(const std::string& path, const char* reason) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  "cannot open flight dump file: " + path);
  }
  {
    SigWriter w(fd);
    dump_rings(w, reason);
  }
  ::close(fd);
  DRX_LOG_INFO << "wrote flight recorder dump to " << path << " (reason: "
               << reason << ")";
  return Status::ok();
}

Status dump_flight(const char* reason) {
  return dump_flight(flight_path(), reason);
}

void dump_flight_signal_safe(const char* reason) noexcept {
  const int fd = ::open(g_flight_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  SigWriter w(fd);
  dump_rings(w, reason);
  w.flush();
  ::close(fd);
}

void install_flight_signal_handlers() noexcept {
  if (g_handlers_installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = flight_signal_handler;
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, &g_old_segv);
  ::sigaction(SIGABRT, &sa, &g_old_abrt);
}

}  // namespace drx::obs
