#include "obs/window.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace drx::obs {

namespace {

struct Epoch {
  std::uint64_t t_us = 0;
  MetricsSnapshot snap;
};

struct WindowState {
  util::Mutex mu;
  // Oldest first; trimmed to cfg.epochs + 1 entries so consecutive-pair
  // deltas yield up to cfg.epochs completed epochs.
  std::vector<Epoch> ring DRX_GUARDED_BY(mu);
  WindowConfig override_cfg DRX_GUARDED_BY(mu);
  bool has_override DRX_GUARDED_BY(mu) = false;
  bool env_parsed DRX_GUARDED_BY(mu) = false;
  WindowConfig env_cfg DRX_GUARDED_BY(mu);
  // A capture runs live_snapshot() outside mu (it takes the registry
  // locks; see Registry::reset for the inverse ordering). This flag keeps
  // concurrent tickers from stacking duplicate captures meanwhile.
  bool capture_in_flight DRX_GUARDED_BY(mu) = false;
  std::atomic<bool> enabled{true};
};

WindowState& state() {
  static WindowState* s = new WindowState;  // leaked: atexit-safe
  return *s;
}

WindowConfig parse_env(const char* env) {
  WindowConfig cfg;
  char* end = nullptr;
  const unsigned long long secs = std::strtoull(env, &end, 10);
  if (end == env || secs == 0 || secs > 86400) {
    DRX_LOG(kWarn) << "DRX_STATS_WINDOW: bad epoch seconds in '" << env
                   << "', keeping default";
    return cfg;
  }
  cfg.epoch_ms = static_cast<std::uint64_t>(secs) * 1000;
  if (*end == 'x') {
    const char* epochs_str = end + 1;
    const unsigned long long n = std::strtoull(epochs_str, &end, 10);
    if (end == epochs_str || *end != '\0' || n == 0 || n > 1024) {
      DRX_LOG(kWarn) << "DRX_STATS_WINDOW: bad epoch count in '" << env
                     << "', keeping default";
    } else {
      cfg.epochs = static_cast<std::size_t>(n);
    }
  } else if (*end != '\0') {
    DRX_LOG(kWarn) << "DRX_STATS_WINDOW: trailing garbage in '" << env
                   << "', keeping default epoch count";
  }
  return cfg;
}

WindowConfig config_locked(WindowState& s) DRX_REQUIRES(s.mu) {
  if (s.has_override) return s.override_cfg;
  if (!s.env_parsed) {
    const char* env = std::getenv("DRX_STATS_WINDOW");
    s.env_cfg = (env != nullptr && env[0] != '\0') ? parse_env(env)
                                                   : WindowConfig{};
    s.env_parsed = true;
  }
  return s.env_cfg;
}

/// Captures one epoch. `force` skips the staleness check
/// (window_record_epoch); otherwise only a due capture proceeds.
void capture(bool force) {
  WindowState& s = state();
  const std::uint64_t now_us = trace_now_ns() / 1000;
  WindowConfig cfg;
  {
    util::MutexLock lock(s.mu);
    cfg = config_locked(s);
    if (s.capture_in_flight) return;
    if (!force && !s.ring.empty() &&
        now_us - s.ring.back().t_us < cfg.epoch_ms * 1000) {
      return;
    }
    s.capture_in_flight = true;
  }
  // The expensive part — registry walks under the registry locks — runs
  // with mu released so scrapes never serialize against metric readers.
  MetricsSnapshot snap = live_snapshot();
  {
    util::MutexLock lock(s.mu);
    s.capture_in_flight = false;
    // A clear/reconfigure may have raced the snapshot; dropping this
    // capture keeps the ring homogeneous (next tick recaptures).
    if (!s.ring.empty() && s.ring.back().t_us > now_us) return;
    s.ring.push_back(Epoch{now_us, std::move(snap)});
    while (s.ring.size() > cfg.epochs + 1) s.ring.erase(s.ring.begin());
  }
}

}  // namespace

WindowConfig window_config() noexcept {
  WindowState& s = state();
  util::MutexLock lock(s.mu);
  return config_locked(s);
}

void set_window_config(const WindowConfig& cfg) {
  WindowState& s = state();
  util::MutexLock lock(s.mu);
  if (cfg.epoch_ms == 0) {
    s.has_override = false;
  } else {
    s.override_cfg = cfg;
    if (s.override_cfg.epochs == 0) s.override_cfg.epochs = 1;
    s.has_override = true;
  }
  s.ring.clear();
}

bool window_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

void set_window_enabled(bool on) noexcept {
  state().enabled.store(on, std::memory_order_relaxed);
  if (!on) window_clear();
}

void window_tick() {
  if (!window_enabled()) return;
  capture(/*force=*/false);
}

void window_record_epoch() {
  if (!window_enabled()) return;
  capture(/*force=*/true);
}

void window_clear() {
  WindowState& s = state();
  util::MutexLock lock(s.mu);
  s.ring.clear();
}

WindowView window_view() {
  WindowView view;
  window_tick();
  MetricsSnapshot live = live_snapshot();
  view.now_us = trace_now_ns() / 1000;
  WindowState& s = state();
  util::MutexLock lock(s.mu);
  if (!window_enabled() || s.ring.empty()) {
    // No ring: report cumulative since boot so a fresh process still
    // scrapes something; epochs == 0 marks the fallback.
    view.delta = std::move(live);
    return view;
  }
  const Epoch& oldest = s.ring.front();
  view.span_us = view.now_us > oldest.t_us ? view.now_us - oldest.t_us : 0;
  view.epochs = s.ring.size();
  view.delta = snapshot_delta(live, oldest.snap);
  return view;
}

std::vector<EpochDelta> window_epochs() {
  window_tick();
  WindowState& s = state();
  util::MutexLock lock(s.mu);
  std::vector<EpochDelta> out;
  for (std::size_t i = 1; i < s.ring.size(); ++i) {
    EpochDelta d;
    d.t_us = s.ring[i].t_us;
    d.span_us = s.ring[i].t_us - s.ring[i - 1].t_us;
    d.delta = snapshot_delta(s.ring[i].snap, s.ring[i - 1].snap);
    out.push_back(std::move(d));
  }
  return out;
}

void window_to_json(JsonWriter& w) {
  const WindowConfig cfg = window_config();
  const WindowView view = window_view();
  const std::vector<EpochDelta> epochs = window_epochs();
  w.begin_object();
  w.key("format").value("drx-window");
  w.key("version").value(std::uint64_t{1});
  w.key("config").begin_object();
  w.key("epoch_ms").value(cfg.epoch_ms);
  w.key("epochs").value(static_cast<std::uint64_t>(cfg.epochs));
  w.key("horizon_ms").value(cfg.horizon_ms());
  w.end_object();
  w.key("slo");
  slo_to_json(w);
  w.key("now_us").value(view.now_us);
  w.key("window").begin_object();
  w.key("span_us").value(view.span_us);
  w.key("epochs").value(static_cast<std::uint64_t>(view.epochs));
  w.key("metrics");
  metrics_to_json(view.delta, w);
  w.end_object();
  w.key("epoch_deltas").begin_array();
  for (const EpochDelta& e : epochs) {
    w.begin_object();
    w.key("t_us").value(e.t_us);
    w.key("span_us").value(e.span_us);
    w.key("metrics");
    metrics_to_json(e.delta, w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

Status write_window(const std::string& path) {
  JsonWriter w;
  window_to_json(w);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open window dump file: " + path);
  }
  out << w.str() << '\n';
  if (!out) {
    return Status(ErrorCode::kIoError, "short write to window dump file: " + path);
  }
  return Status::ok();
}

}  // namespace drx::obs
