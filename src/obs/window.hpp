// Sliding-window metric views (docs/OBSERVABILITY.md "Live telemetry").
//
// The Registry is cumulative: every counter and log2 histogram only ever
// grows, which is exactly what makes windows cheap. A window is the
// difference of two cumulative snapshots, and log2 histograms are
// mergeable bucket-wise, so p50/p95/p99 *over the last N seconds* falls
// out of plain subtraction — no per-observation bookkeeping, no decay
// math, and zero added cost on the metric hot path (the <2% obs-overhead
// gate that bench_obs_overhead enforces).
//
// Mechanics: a ring of epoch snapshots. Every DRX_STATS_WINDOW epoch
// (default 10 s, 6 epochs = a 60 s horizon) the engine captures one
// cumulative obs::live_snapshot() into the ring. The live window view is
// then live - oldest-in-ring (saturating, in case a Registry::reset()
// slipped between captures), and per-epoch deltas between consecutive
// ring entries feed the drx_doctor window-regression and slo-burn-rate
// detectors (obs/slo.hpp, obs/analysis.hpp).
//
// Epoch capture is lazy: window_tick() captures only when the newest
// epoch is stale, and every consumer (the exporter's scrape handler, the
// listener's idle loop, window_view() itself) ticks on entry — so a
// process with no scraper pays nothing at all.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace drx::obs {

class JsonWriter;

struct WindowConfig {
  std::uint64_t epoch_ms = 10000;  ///< one epoch of the ring
  std::size_t epochs = 6;          ///< ring length => horizon = epoch*epochs

  [[nodiscard]] std::uint64_t horizon_ms() const noexcept {
    return epoch_ms * static_cast<std::uint64_t>(epochs);
  }
};

/// DRX_STATS_WINDOW syntax: "<epoch-seconds>" or
/// "<epoch-seconds>x<epochs>" (e.g. "10x6"); unset keeps the defaults.
/// Out-of-range pieces fall back to the defaults rather than erroring:
/// telemetry must never take the process down.
[[nodiscard]] WindowConfig window_config() noexcept;

/// Programmatic override (tests/benches); clears the ring, since epochs
/// captured under another cadence would mislabel the horizon. An
/// epoch_ms of 0 restores the DRX_STATS_WINDOW / default behavior.
void set_window_config(const WindowConfig& cfg);

/// Window engine master switch (bench ablation: the windowed-metrics
/// on/off rows in bench_obs_overhead). Disabled = tick/view no-ops and
/// window_view() reports an empty view.
[[nodiscard]] bool window_enabled() noexcept;
void set_window_enabled(bool on) noexcept;

/// Captures an epoch if the newest one is older than one epoch_ms.
/// Cheap when nothing is due (one mutex + one clock read).
void window_tick();

/// Unconditionally captures an epoch boundary now (tests; the exporter
/// calls window_tick instead).
void window_record_epoch();

/// Drops every captured epoch. Registry::reset() calls this so windowed
/// views never subtract a pre-reset cumulative snapshot from a post-reset
/// one (the deltas would be nonsense); also used directly by tests.
void window_clear();

/// The live sliding-window view: everything that happened between the
/// oldest ring epoch and now. With an empty ring (engine just started or
/// just cleared) the view falls back to the cumulative snapshot with
/// epochs == 0, so consumers can tell "window" from "since boot".
struct WindowView {
  std::uint64_t now_us = 0;   ///< trace clock at evaluation
  std::uint64_t span_us = 0;  ///< horizon actually covered by the view
  std::size_t epochs = 0;     ///< ring epochs backing the view
  MetricsSnapshot delta;      ///< live minus oldest epoch, saturating
};

[[nodiscard]] WindowView window_view();

/// One completed epoch: the delta between two consecutive ring captures.
struct EpochDelta {
  std::uint64_t t_us = 0;     ///< end-of-epoch timestamp
  std::uint64_t span_us = 0;  ///< epoch duration actually covered
  MetricsSnapshot delta;
};

/// Completed epochs, oldest first (at most cfg.epochs of them). The last
/// entry is the freshest *completed* epoch — the "fast" window the SLO
/// burn-rate detector compares against the full-horizon "slow" window.
[[nodiscard]] std::vector<EpochDelta> window_epochs();

/// Emits the "drx-window" v1 document: config, SLO targets (obs/slo.hpp),
/// completed per-epoch deltas, and the merged live window — the artifact
/// drx_doctor --window ingests.
void window_to_json(JsonWriter& w);

/// Writes the drx-window document to `path` (DRX_WINDOW_DUMP at exit).
[[nodiscard]] Status write_window(const std::string& path);

}  // namespace drx::obs
