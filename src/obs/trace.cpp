#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace drx::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::uint64_t bytes;
  std::uint64_t op;  ///< 0 = no op in flight
  int rank;          ///< -1 = host thread
  std::uint32_t tid;
};

/// One side of an async arrow ("s" when out, "f" when in).
struct FlowEvent {
  std::uint64_t id;
  std::uint64_t ts_ns;
  std::uint64_t op;
  int rank;
  std::uint32_t tid;
  bool out;
};

/// Per-stage summary of a closed OpScope, rendered as an "X" event with
/// cat "op" whose args carry the attribution breakdown.
struct OpEvent {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::uint64_t op;
  std::uint64_t stage_ns[kStageCount];
  std::uint8_t dominant;
  int rank;
  std::uint32_t tid;
};

/// Hard cap so a runaway loop cannot eat the heap; ~64 MB worst case for
/// spans, far less for flows/op summaries (same cap, smaller records).
constexpr std::size_t kMaxEvents = 1U << 20;

struct TraceState {
  util::Mutex mu;
  std::string path DRX_GUARDED_BY(mu);
  std::vector<TraceEvent> events DRX_GUARDED_BY(mu);
  std::vector<FlowEvent> flows DRX_GUARDED_BY(mu);
  std::vector<OpEvent> ops DRX_GUARDED_BY(mu);
  std::uint64_t dropped DRX_GUARDED_BY(mu) = 0;
};

TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

std::uint32_t thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

/// Bumps the shared drop accounting (trace buffer at capacity).
void count_drop_locked(TraceState& s) DRX_REQUIRES(s.mu) {
  ++s.dropped;
  // Surfaced as a counter so truncated traces are machine-detectable
  // (drx_doctor flags any nonzero obs.trace.dropped as an error).
  static const MetricId kDropped = counter_id("obs.trace.dropped");
  registry().counter(kDropped).add();
}

void flush_at_exit() {
  const Status s = flush_trace();
  if (!s.is_ok()) {
    // The user explicitly asked for a trace via DRX_TRACE; report the loss
    // even when logging is off.
    std::fprintf(stderr, "[drx E] DRX_TRACE flush failed: %s\n",
                 s.message().c_str());
  }
}

/// Reads DRX_TRACE once at startup; set_trace_path can override later.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("DRX_TRACE");
    if (env != nullptr && env[0] != '\0') {
      TraceState& s = state();
      {
        util::MutexLock lock(s.mu);
        s.path = env;
      }
      detail::g_trace_enabled.store(true, std::memory_order_relaxed);
      std::atexit(flush_at_exit);
    }
  }
};
EnvInit g_env_init;

}  // namespace

std::uint64_t trace_now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void set_trace_path(const std::string& path) {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  s.path = path;
  detail::g_trace_enabled.store(!path.empty(), std::memory_order_relaxed);
}

std::string trace_path() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  return s.path;
}

void record_span(const char* name, const char* category, std::uint64_t ts_ns,
                 std::uint64_t dur_ns, std::uint64_t bytes) {
  const std::uint64_t op = detail::t_op.op;
  const int rank = current_rank();
  const std::uint32_t tid = thread_tid();
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  if (s.events.size() >= kMaxEvents) {
    count_drop_locked(s);
    return;
  }
  s.events.push_back(
      TraceEvent{name, category, ts_ns, dur_ns, bytes, op, rank, tid});
}

namespace detail {
void record_span_end(const char* name, const char* category,
                     std::uint64_t start_ns, std::uint64_t bytes,
                     std::uint64_t span_id, std::uint64_t parent_span) {
  const std::uint64_t dur_ns = trace_now_ns() - start_ns;
  if (trace_enabled()) {
    record_span(name, category, start_ns, dur_ns, bytes);
  }
  if (flight_enabled()) {
    flight_record(FlightKind::kSpan, name, start_ns, dur_ns, bytes,
                  detail::t_op.op, parent_span);
  }
  (void)span_id;
}
}  // namespace detail

namespace {
void record_flow(std::uint64_t flow_id, const OpContext& ctx, bool out) {
  const std::uint64_t ts_ns = trace_now_ns();
  if (trace_enabled()) {
    const int rank = current_rank();
    const std::uint32_t tid = thread_tid();
    TraceState& s = state();
    util::MutexLock lock(s.mu);
    if (s.flows.size() >= kMaxEvents) {
      count_drop_locked(s);
    } else {
      s.flows.push_back(FlowEvent{flow_id, ts_ns, ctx.op, rank, tid, out});
    }
  }
  if (flight_enabled()) {
    flight_record(out ? FlightKind::kFlowOut : FlightKind::kFlowIn,
                  "drx.flow", ts_ns, 0, flow_id, ctx.op, ctx.parent_span);
  }
}
}  // namespace

void record_flow_out(std::uint64_t flow_id, const OpContext& ctx) {
  record_flow(flow_id, ctx, /*out=*/true);
}

void record_flow_in(std::uint64_t flow_id, const OpContext& ctx) {
  record_flow(flow_id, ctx, /*out=*/false);
}

void record_op_summary(const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns, std::uint64_t op,
                       const std::uint64_t (&stage_ns)[kStageCount],
                       Stage dominant) {
  if (trace_enabled()) {
    OpEvent e{};
    e.name = name;
    e.ts_ns = start_ns;
    e.dur_ns = dur_ns;
    e.op = op;
    for (std::size_t i = 0; i < kStageCount; ++i) e.stage_ns[i] = stage_ns[i];
    e.dominant = static_cast<std::uint8_t>(dominant);
    e.rank = current_rank();
    e.tid = thread_tid();
    TraceState& s = state();
    util::MutexLock lock(s.mu);
    if (s.ops.size() >= kMaxEvents) {
      count_drop_locked(s);
    } else {
      s.ops.push_back(e);
    }
  }
  if (flight_enabled()) {
    flight_record(FlightKind::kOp, name, start_ns, dur_ns,
                  static_cast<std::uint64_t>(dominant), op, 0);
  }
}

Status write_trace(const std::string& path) {
  std::vector<TraceEvent> events;
  std::vector<FlowEvent> flows;
  std::vector<OpEvent> ops;
  std::uint64_t dropped = 0;
  {
    TraceState& s = state();
    util::MutexLock lock(s.mu);
    events = s.events;
    flows = s.flows;
    ops = s.ops;
    dropped = s.dropped;
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open trace file: " + path);
  }

  // Emitted by hand rather than via JsonWriter: a trace can hold a million
  // events, and one line per event keeps the file diffable and streamable.
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // One pseudo-process per rank, named for human consumption.
  std::set<int> ranks;
  for (const TraceEvent& e : events) ranks.insert(e.rank);
  for (const FlowEvent& e : flows) ranks.insert(e.rank);
  for (const OpEvent& e : ops) ranks.insert(e.rank);
  for (int r : ranks) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << (r + 1)
        << ",\"tid\":0,\"args\":{\"name\":\""
        << (r < 0 ? std::string("host") : "rank " + std::to_string(r))
        << "\"}}";
  }

  char buf[256];
  for (const TraceEvent& e : events) {
    if (!first) out << ",\n";
    first = false;
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  e.name, e.category, e.rank + 1, e.tid, ts_us, dur_us);
    out << buf;
    if (e.bytes != 0 || e.op != 0) {
      out << ",\"args\":{";
      if (e.bytes != 0) out << "\"bytes\":" << e.bytes;
      if (e.op != 0) {
        if (e.bytes != 0) out << ",";
        out << "\"op\":" << e.op;
      }
      out << "}";
    }
    out << "}";
  }

  // Flow events: the same (name, cat, id) on both sides tells the viewer
  // which "s" pairs with which "f"; "bp":"e" binds the arrow head to the
  // enclosing slice rather than the next one.
  for (const FlowEvent& e : flows) {
    if (!first) out << ",\n";
    first = false;
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"drx.flow\",\"cat\":\"flow\",\"ph\":\"%s\","
                  "\"id\":%llu,\"pid\":%d,\"tid\":%u,\"ts\":%.3f",
                  e.out ? "s" : "f",
                  static_cast<unsigned long long>(e.id), e.rank + 1, e.tid,
                  ts_us);
    out << buf;
    if (!e.out) out << ",\"bp\":\"e\"";
    if (e.op != 0) out << ",\"args\":{\"op\":" << e.op << "}";
    out << "}";
  }

  // Op summaries: "X" events with cat "op" carrying stage attribution.
  for (const OpEvent& e : ops) {
    if (!first) out << ",\n";
    first = false;
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"op\",\"ph\":\"X\","
                  "\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":{\"op\":%llu",
                  e.name, e.rank + 1, e.tid, ts_us, dur_us,
                  static_cast<unsigned long long>(e.op));
    out << buf;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      out << ",\"" << stage_name(static_cast<Stage>(i))
          << "_ns\":" << e.stage_ns[i];
    }
    out << ",\"dominant\":\"" << stage_name(static_cast<Stage>(e.dominant))
        << "\"}}";
  }

  // Top-level metadata record: lets tools (drx_doctor) detect a truncated
  // trace without scanning stderr. Extra top-level keys are legal in the
  // Trace Event Format's JSON Object form.
  out << "\n],\"metadata\":{\"events\":" << events.size()
      << ",\"flows\":" << flows.size() << ",\"ops\":" << ops.size()
      << ",\"dropped\":" << dropped << "}}\n";
  if (!out.good()) {
    return Status(ErrorCode::kIoError, "short write to trace file: " + path);
  }
  DRX_LOG_INFO << "wrote " << events.size() << " trace events ("
               << flows.size() << " flows, " << ops.size() << " ops) to "
               << path
               << (dropped != 0
                       ? " (" + std::to_string(dropped) + " dropped)"
                       : "");
  return Status::ok();
}

Status flush_trace() {
  const std::string path = trace_path();
  if (path.empty()) return Status::ok();
  return write_trace(path);
}

void clear_trace() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  s.events.clear();
  s.flows.clear();
  s.ops.clear();
  s.dropped = 0;
}

std::size_t trace_event_count() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  return s.events.size();
}

std::uint64_t trace_dropped_count() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  return s.dropped;
}

}  // namespace drx::obs
