#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace drx::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::uint64_t bytes;
  int rank;       ///< -1 = host thread
  std::uint32_t tid;
};

/// Hard cap so a runaway loop cannot eat the heap; ~56 MB worst case.
constexpr std::size_t kMaxEvents = 1U << 20;

struct TraceState {
  util::Mutex mu;
  std::string path DRX_GUARDED_BY(mu);
  std::vector<TraceEvent> events DRX_GUARDED_BY(mu);
  std::uint64_t dropped DRX_GUARDED_BY(mu) = 0;
};

TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

std::uint32_t thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

void flush_at_exit() {
  const Status s = flush_trace();
  if (!s.is_ok()) {
    // The user explicitly asked for a trace via DRX_TRACE; report the loss
    // even when logging is off.
    std::fprintf(stderr, "[drx E] DRX_TRACE flush failed: %s\n",
                 s.message().c_str());
  }
}

/// Reads DRX_TRACE once at startup; set_trace_path can override later.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("DRX_TRACE");
    if (env != nullptr && env[0] != '\0') {
      TraceState& s = state();
      {
        util::MutexLock lock(s.mu);
        s.path = env;
      }
      detail::g_trace_enabled.store(true, std::memory_order_relaxed);
      std::atexit(flush_at_exit);
    }
  }
};
EnvInit g_env_init;

}  // namespace

std::uint64_t trace_now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void set_trace_path(const std::string& path) {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  s.path = path;
  detail::g_trace_enabled.store(!path.empty(), std::memory_order_relaxed);
}

std::string trace_path() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  return s.path;
}

void record_span(const char* name, const char* category, std::uint64_t ts_ns,
                 std::uint64_t dur_ns, std::uint64_t bytes) {
  const int rank = current_rank();
  const std::uint32_t tid = thread_tid();
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  if (s.events.size() >= kMaxEvents) {
    ++s.dropped;
    // Surfaced as a counter so truncated traces are machine-detectable
    // (drx_doctor flags any nonzero obs.trace.dropped as an error).
    static const MetricId kDropped = counter_id("obs.trace.dropped");
    registry().counter(kDropped).add();
    return;
  }
  s.events.push_back(TraceEvent{name, category, ts_ns, dur_ns, bytes,
                                rank, tid});
}

Status write_trace(const std::string& path) {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  {
    TraceState& s = state();
    util::MutexLock lock(s.mu);
    events = s.events;
    dropped = s.dropped;
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open trace file: " + path);
  }

  // Emitted by hand rather than via JsonWriter: a trace can hold a million
  // events, and one line per event keeps the file diffable and streamable.
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // One pseudo-process per rank, named for human consumption.
  std::set<int> ranks;
  for (const TraceEvent& e : events) ranks.insert(e.rank);
  for (int r : ranks) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << (r + 1)
        << ",\"tid\":0,\"args\":{\"name\":\""
        << (r < 0 ? std::string("host") : "rank " + std::to_string(r))
        << "\"}}";
  }

  char buf[256];
  for (const TraceEvent& e : events) {
    if (!first) out << ",\n";
    first = false;
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  e.name, e.category, e.rank + 1, e.tid, ts_us, dur_us);
    out << buf;
    if (e.bytes != 0) {
      out << ",\"args\":{\"bytes\":" << e.bytes << "}";
    }
    out << "}";
  }
  // Top-level metadata record: lets tools (drx_doctor) detect a truncated
  // trace without scanning stderr. Extra top-level keys are legal in the
  // Trace Event Format's JSON Object form.
  out << "\n],\"metadata\":{\"events\":" << events.size()
      << ",\"dropped\":" << dropped << "}}\n";
  if (!out.good()) {
    return Status(ErrorCode::kIoError, "short write to trace file: " + path);
  }
  DRX_LOG_INFO << "wrote " << events.size() << " trace events to " << path
               << (dropped != 0
                       ? " (" + std::to_string(dropped) + " dropped)"
                       : "");
  return Status::ok();
}

Status flush_trace() {
  const std::string path = trace_path();
  if (path.empty()) return Status::ok();
  return write_trace(path);
}

void clear_trace() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  s.events.clear();
  s.dropped = 0;
}

std::size_t trace_event_count() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  return s.events.size();
}

std::uint64_t trace_dropped_count() {
  TraceState& s = state();
  util::MutexLock lock(s.mu);
  return s.dropped;
}

}  // namespace drx::obs
