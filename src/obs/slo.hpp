// Service-level objectives over latency histograms (docs/OBSERVABILITY.md
// "Live telemetry": SLO config).
//
// An SLO here is "fraction of observations above target_us must stay
// under budget". Evaluated against windowed log2 histograms
// (obs/window.hpp) it yields a *burn rate* — the classic multi-window
// alerting signal: burn = bad_fraction / budget, so burn 1.0 spends the
// budget exactly over the SLO period and burn 14.4 exhausts a 30-day
// budget in ~2 days. drx_doctor's slo-burn-rate detector fires when both
// the fast window (latest epoch) and the slow window (full ring horizon)
// burn hot, which filters blips without missing sustained breaches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace drx::obs {

class JsonWriter;

struct SloTarget {
  std::string histogram;          ///< latency histogram the SLO covers
  std::uint64_t target_us = 0;    ///< objective: observations should be <=
  double budget = 0.01;           ///< allowed fraction above target
};

struct SloEval {
  std::uint64_t total = 0;  ///< observations in the window
  std::uint64_t bad = 0;    ///< observations above target (conservative)
  double bad_fraction = 0.0;
  double burn_rate = 0.0;   ///< bad_fraction / budget
};

/// Counts every bucket whose upper bound exceeds target_us as bad: with
/// log2 buckets the true threshold falls inside one bucket, and an SLO
/// check must over-count rather than under-count violations. Practical
/// targets should sit on a bucket edge (2^k - 1) to avoid the rounding.
[[nodiscard]] SloEval evaluate_slo(const SloTarget& slo,
                                   const HistogramSample& h);

/// The process SLO set. Defaults to one serving objective
/// (serve.request.latency_us <= 16383us for 99% of requests) unless
/// DRX_SLO overrides it: comma-separated
/// `<histogram>:<target_us>:<budget>` entries, e.g.
/// `serve.request.latency_us:1023:0.001,io.pool.queue_wait_us:4095:0.05`.
/// Malformed entries are skipped with a warning — telemetry config must
/// never take the process down. DRX_SLO=none disables all targets.
[[nodiscard]] std::vector<SloTarget> slo_targets();

/// Programmatic override (tests); empty vector restores the
/// DRX_SLO / default behavior on the next slo_targets() call.
void set_slo_targets(std::vector<SloTarget> targets);

/// Emits the targets array (window_to_json embeds it so drx_doctor can
/// evaluate SLOs offline from the drx-window document alone).
void slo_to_json(JsonWriter& w);

}  // namespace drx::obs
