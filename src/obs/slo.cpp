#include "obs/slo.hpp"

#include <cstdlib>
#include <string_view>
#include <utility>

#include "obs/json.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace drx::obs {

namespace {

struct SloState {
  util::Mutex mu;
  std::vector<SloTarget> override_targets DRX_GUARDED_BY(mu);
  bool has_override DRX_GUARDED_BY(mu) = false;
  bool env_parsed DRX_GUARDED_BY(mu) = false;
  std::vector<SloTarget> env_targets DRX_GUARDED_BY(mu);
};

SloState& state() {
  static SloState* s = new SloState;  // leaked: usable from atexit dumps
  return *s;
}

std::vector<SloTarget> default_targets() {
  // 99% of serve requests within ~16ms — a deliberate log2 bucket edge
  // (2^14 - 1) so evaluate_slo's conservative rounding is exact.
  return {SloTarget{"serve.request.latency_us", 16383, 0.01}};
}

/// Parses one `<histogram>:<target_us>:<budget>` entry; returns false on
/// malformed input.
bool parse_entry(std::string_view entry, SloTarget& out) {
  const std::size_t c1 = entry.find(':');
  if (c1 == std::string_view::npos || c1 == 0) return false;
  const std::size_t c2 = entry.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return false;
  out.histogram = std::string(entry.substr(0, c1));
  const std::string target(entry.substr(c1 + 1, c2 - c1 - 1));
  const std::string budget(entry.substr(c2 + 1));
  char* end = nullptr;
  const unsigned long long t = std::strtoull(target.c_str(), &end, 10);
  if (end == target.c_str() || *end != '\0') return false;
  const double b = std::strtod(budget.c_str(), &end);
  if (end == budget.c_str() || *end != '\0') return false;
  if (b <= 0.0 || b > 1.0) return false;
  out.target_us = static_cast<std::uint64_t>(t);
  out.budget = b;
  return true;
}

std::vector<SloTarget> parse_env(const char* env) {
  std::string_view rest(env);
  if (rest == "none") return {};
  std::vector<SloTarget> targets;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;
    SloTarget t;
    if (parse_entry(entry, t)) {
      targets.push_back(std::move(t));
    } else {
      DRX_LOG(kWarn) << "DRX_SLO: skipping malformed entry '"
                     << std::string(entry) << "'";
    }
  }
  return targets;
}

}  // namespace

SloEval evaluate_slo(const SloTarget& slo, const HistogramSample& h) {
  SloEval e;
  e.total = h.count;
  if (e.total == 0) return e;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (histogram_bucket_upper_bound(b) > slo.target_us) e.bad += h.buckets[b];
  }
  e.bad_fraction = static_cast<double>(e.bad) / static_cast<double>(e.total);
  e.burn_rate = slo.budget > 0.0 ? e.bad_fraction / slo.budget : 0.0;
  return e;
}

std::vector<SloTarget> slo_targets() {
  SloState& s = state();
  util::MutexLock lock(s.mu);
  if (s.has_override) return s.override_targets;
  if (!s.env_parsed) {
    const char* env = std::getenv("DRX_SLO");
    s.env_targets = (env != nullptr && env[0] != '\0') ? parse_env(env)
                                                       : default_targets();
    s.env_parsed = true;
  }
  return s.env_targets;
}

void set_slo_targets(std::vector<SloTarget> targets) {
  SloState& s = state();
  util::MutexLock lock(s.mu);
  s.has_override = !targets.empty();
  s.override_targets = std::move(targets);
}

void slo_to_json(JsonWriter& w) {
  w.begin_array();
  for (const SloTarget& t : slo_targets()) {
    w.begin_object();
    w.key("histogram").value(t.histogram);
    w.key("target_us").value(t.target_us);
    w.key("budget").value(t.budget);
    w.end_object();
  }
  w.end_array();
}

}  // namespace drx::obs
