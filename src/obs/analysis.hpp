// Pure analysis functions over observability artifacts: metrics
// snapshots, access-profile heatmaps (obs/profile.hpp), trace JSON, and
// sampled time series. Each detector appends Findings; drx_doctor is a
// thin CLI over this header, and tests drive the detectors directly on
// synthetic inputs.
//
// The detectors encode the paper's performance story: balanced zone
// partitions (rank imbalance), even striping (hot pfs servers), two-phase
// aggregation that actually amortizes (aggregator skew), and a cache/
// read-ahead pipeline that overlaps instead of thrashing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"

namespace drx::obs {
class JsonWriter;
struct JsonValue;
}  // namespace drx::obs

namespace drx::obs::analysis {

// ---- findings -------------------------------------------------------------

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

[[nodiscard]] std::string_view severity_name(Severity s);

struct Finding {
  std::string id;        ///< stable kebab-case detector id
  Severity severity = Severity::kInfo;
  double score = 0.0;    ///< detector magnitude (ratio, fraction, count)
  std::string message;   ///< one human-readable sentence
};

struct Report {
  std::vector<Finding> findings;
};

[[nodiscard]] std::size_t count_severity(const Report& r, Severity s);
[[nodiscard]] bool has_errors(const Report& r);

[[nodiscard]] std::string report_to_text(const Report& r);

/// Emits {"format":"drx-doctor", ...} into a writer position expecting a
/// value (strict JSON, validated in tests with obs::json_validate).
void report_to_json(const Report& r, JsonWriter& w);

// ---- imbalance math -------------------------------------------------------

/// max/mean skew over a per-entity load vector. `ids` (optional, parallel
/// to `values`) names the argmax entity; otherwise argmax is the index.
struct ImbalanceStat {
  std::size_t n = 0;
  double max = 0.0;
  double mean = 0.0;
  double ratio = 1.0;  ///< max/mean; 1.0 = perfectly balanced
  int argmax = -1;
};

[[nodiscard]] ImbalanceStat imbalance(std::span<const double> values,
                                      std::span<const int> ids = {});

/// Imbalance thresholds shared by all skew detectors.
inline constexpr double kWarnRatio = 1.5;
inline constexpr double kErrorRatio = 4.0;

// ---- profile detectors ----------------------------------------------------

/// Per-rank chunk-traffic bytes (heatmap rows summed; host rank -1
/// excluded — it is not a zone owner). Ranks in p.ranks that recorded no
/// traffic count as zero load: an idle participant IS the skew.
[[nodiscard]] ImbalanceStat rank_chunk_imbalance(const ProfileSnapshot& p);

/// Per-rank pfs bytes ("rank 3 does 2.4x mean pfs bytes").
[[nodiscard]] ImbalanceStat rank_pfs_imbalance(const ProfileSnapshot& p);

/// Per-server pfs bytes (hot server / striping imbalance).
[[nodiscard]] ImbalanceStat pfs_server_imbalance(const ProfileSnapshot& p);

/// Per-rank aggregator device-access bytes (two-phase skew).
[[nodiscard]] ImbalanceStat aggregator_imbalance(const ProfileSnapshot& p);

/// Runs every profile detector. Imbalance findings are always emitted
/// (info when balanced) so balanced and skewed runs are comparable.
void analyze_profile(const ProfileSnapshot& p, std::vector<Finding>& out);

// ---- metrics detectors ----------------------------------------------------

/// Cache thrash, prefetch effectiveness (issued vs useful vs wasted), and
/// dropped trace events, from plain counters.
void analyze_metrics(const MetricsSnapshot& snap, std::vector<Finding>& out);

/// Rebuilds a (counter + histogram count/sum) snapshot from the JSON
/// rendering metrics_to_json produces — the form embedded in bench
/// reports, which drx_doctor ingests.
[[nodiscard]] MetricsSnapshot metrics_from_json(const JsonValue& doc);

// ---- trace analysis -------------------------------------------------------

struct RankBusy {
  int rank = -1;
  double busy_us = 0.0;  ///< union of span intervals (critical path length)
};

/// One op-summary event (cat "op") from a trace: wall time plus the
/// per-stage attribution recorded by the closing OpScope.
struct OpStat {
  std::string name;
  std::uint64_t op = 0;
  double dur_us = 0.0;
  std::array<double, kStageCount> stage_us{};
  std::string dominant;
  int rank = -1;
};

struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t flows = 0;         ///< submit->dequeue flow arrows ("s" phase)
  std::vector<RankBusy> per_rank;  ///< simulated ranks only (rank >= 0)
  double critical_path_us = 0.0;   ///< max per-rank busy: the straggler
  std::string longest_name;        ///< single longest span
  double longest_dur_us = 0.0;
  int longest_rank = -1;
  std::vector<OpStat> ops;         ///< per-op stage attribution summaries
};

/// Digests a parsed Trace Event Format document (as written by
/// obs::write_trace). Per-rank busy time is the union of that rank's span
/// intervals, so nested spans do not double-count.
[[nodiscard]] Result<TraceSummary> summarize_trace(const JsonValue& doc);

void analyze_trace(const TraceSummary& t, std::vector<Finding>& out);

// ---- flight-recorder analysis ---------------------------------------------

/// Digests a "drx-flight" post-mortem dump (obs/flight.hpp): reports why
/// and when the dump happened, and reconstructs the causal chain (spans,
/// flow arrows, op summary) of the most recent op on record — the op
/// that was in flight when things went wrong.
void analyze_flight(const JsonValue& doc, std::vector<Finding>& out);

// ---- time-series analysis -------------------------------------------------

/// Detects I/O stalls in a "drx-series" document: >= `min_stall_samples`
/// consecutive samples with zero byte-counter movement while activity
/// resumes later (flush stalls, lost overlap).
void analyze_series(const JsonValue& doc, std::vector<Finding>& out,
                    std::size_t min_stall_samples = 3);

// ---- live-window analysis -------------------------------------------------

/// Multi-window burn-rate thresholds (both the fast and slow window must
/// clear the bar, which filters blips without missing sustained
/// breaches). 14.4 is the classic "2% of a 30-day budget per hour" page
/// threshold; 6 the ticket threshold.
inline constexpr double kBurnWarn = 6.0;
inline constexpr double kBurnError = 14.4;

/// window-regression thresholds in log2-quantile space: one bucket is a
/// 2x step, so 4x (two buckets) is the smallest movement that cannot be
/// rounding noise, and 8x is unambiguous.
inline constexpr double kRegressWarnRatio = 4.0;
inline constexpr double kRegressErrorRatio = 8.0;

/// Observations below this (in both windows compared) mute the window
/// detectors: quantile math over a handful of samples is noise.
inline constexpr std::uint64_t kWindowMinCount = 16;

/// Digests a "drx-window" document (obs/window.hpp): evaluates each
/// embedded SLO target over the fast window (latest completed epoch) and
/// the slow window (full ring horizon) — the slo-burn-rate detector —
/// and compares the latest epoch's latency p95 against the merged
/// trailing-epoch baseline (window-regression, *_us histograms only).
void analyze_window(const JsonValue& doc, std::vector<Finding>& out);

}  // namespace drx::obs::analysis
