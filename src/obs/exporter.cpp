#include "obs/exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string_view>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace drx::obs {

namespace {

// ---- scrape providers ------------------------------------------------------

struct ProviderEntry {
  int handle = 0;
  ScrapeProviderFn fn;
};

struct ProviderState {
  util::Mutex mu;
  std::vector<ProviderEntry> providers DRX_GUARDED_BY(mu);
  int next_handle DRX_GUARDED_BY(mu) = 1;
};

ProviderState& providers() {
  static ProviderState* s = new ProviderState;  // leaked: atexit-safe
  return *s;
}

/// Runs every provider under the provider mutex — this is what lets
/// unregister_scrape_provider() guarantee "no callback in flight" by
/// simply taking the same mutex.
std::vector<ScrapeGauge> collect_gauges() {
  std::vector<ScrapeGauge> gauges;
  ProviderState& ps = providers();
  util::MutexLock lock(ps.mu);
  for (const ProviderEntry& p : ps.providers) {
    std::vector<ScrapeGauge> mine;
    p.fn(mine);
    if (mine.size() > kMaxProviderGauges) {
      registry()
          .counter(counter_id("obs.exporter.gauges_dropped"))
          .add(mine.size() - kMaxProviderGauges);
      mine.resize(kMaxProviderGauges);
    }
    for (ScrapeGauge& g : mine) gauges.push_back(std::move(g));
  }
  return gauges;
}

// ---- Prometheus text exposition --------------------------------------------

/// drx dotted name -> Prometheus name: non-[a-zA-Z0-9_] become '_' and
/// everything gets the drx_ prefix.
std::string sanitize(std::string_view name) {
  std::string out = "drx_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string escape_label(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Splits bounded-cardinality structure labels out of a counter name:
/// core.cache.shard.<i>.accesses -> (core.cache.shard.accesses,
/// shard="i"). Everything else passes through unlabeled.
struct LabeledName {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
};

LabeledName split_labels(const std::string& name) {
  static constexpr std::string_view kShardPrefix = "core.cache.shard.";
  if (name.size() > kShardPrefix.size() &&
      name.compare(0, kShardPrefix.size(), kShardPrefix) == 0) {
    const std::size_t dot = name.find('.', kShardPrefix.size());
    if (dot != std::string::npos) {
      const std::string index = name.substr(kShardPrefix.size(),
                                            dot - kShardPrefix.size());
      const bool numeric =
          !index.empty() &&
          std::all_of(index.begin(), index.end(),
                      [](char c) { return c >= '0' && c <= '9'; });
      if (numeric) {
        LabeledName out;
        out.name = std::string(kShardPrefix.substr(0, kShardPrefix.size() - 1))
                   + name.substr(dot);
        out.labels.emplace_back("shard", index);
        return out;
      }
    }
  }
  return LabeledName{name, {}};
}

std::string format_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 9.0e15 && v > -9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Samples accumulated per metric family. Label-split counters
/// (core.cache.shard.<i>.*) and per-session gauges arrive interleaved
/// across label sets; the exposition format requires one TYPE line per
/// family with all its samples contiguous, so rendering buffers
/// family -> body and emits grouped.
void append_family_sample(std::map<std::string, std::string>& families,
                          const std::string& prom_name,
                          const std::string& labels, double value) {
  std::string& body = families[prom_name];
  body += prom_name;
  body += labels;
  body += ' ';
  body += format_double(value);
  body += '\n';
}

void emit_families(std::string& out,
                   const std::map<std::string, std::string>& families,
                   std::string_view type) {
  for (const auto& [name, body] : families) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    out += body;
  }
}

/// Stable window label from the configured horizon ("60s"), NOT from the
/// measured span — a per-scrape value would churn one time series per
/// scrape.
std::string window_label_value(const WindowConfig& cfg) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llus",
                static_cast<unsigned long long>(cfg.horizon_ms() / 1000));
  return buf;
}

// ---- HTTP plumbing ---------------------------------------------------------

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

HttpResponse handle_request(std::string_view request_line) {
  // "GET <path> HTTP/1.x" — anything else is malformed.
  HttpResponse resp;
  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) {
    resp.status = 400;
    resp.body = "malformed request line\n";
    return resp;
  }
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      request_line.substr(sp2 + 1).substr(0, 5) != "HTTP/") {
    resp.status = 400;
    resp.body = "malformed request line\n";
    return resp;
  }
  const std::string_view method = request_line.substr(0, sp1);
  std::string_view path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);
  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
    return resp;
  }
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = render_prometheus();
  } else if (path == "/json") {
    resp.content_type = "application/json";
    resp.body = render_live_json();
  } else if (path == "/window.json") {
    resp.content_type = "application/json";
    JsonWriter w;
    window_to_json(w);
    resp.body = w.str() + "\n";
  } else if (path == "/snapshot.bin") {
    resp.content_type = "application/octet-stream";
    const std::vector<std::byte> blob = live_snapshot().serialize();
    resp.body.assign(reinterpret_cast<const char*>(blob.data()), blob.size());
  } else {
    resp.status = 404;
    resp.body = "unknown path (try /metrics, /json, /window.json, "
                "/snapshot.bin)\n";
  }
  return resp;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must not SIGPIPE
    // the serving process.
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void serve_connection(int fd) {
  // One short-lived request per connection; a scrape is a single GET.
  struct timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[4096];
  std::size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + got, sizeof(buf) - 1 - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  if (got == 0) return;
  buf[got] = '\0';
  std::string_view text(buf, got);
  const std::size_t eol = text.find_first_of("\r\n");
  const std::string_view request_line =
      eol == std::string_view::npos ? text : text.substr(0, eol);
  const HttpResponse resp = handle_request(request_line);
  registry().counter(counter_id("obs.exporter.scrapes")).add(1);
  if (resp.status != 200) {
    registry().counter(counter_id("obs.exporter.bad_requests")).add(1);
  }
  char header[256];
  const int header_len = std::snprintf(
      header, sizeof(header),
      "HTTP/1.1 %d %.*s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      resp.status, static_cast<int>(status_text(resp.status).size()),
      status_text(resp.status).data(), resp.content_type.c_str(),
      resp.body.size());
  if (!send_all(fd, header, static_cast<std::size_t>(header_len))) return;
  send_all(fd, resp.body.data(), resp.body.size());
}

// ---- listener thread -------------------------------------------------------

struct ExporterState {
  util::Mutex mu;
  std::thread thread DRX_GUARDED_BY(mu);
  int listen_fd DRX_GUARDED_BY(mu) = -1;
  std::atomic<bool> stop{false};
  std::atomic<std::uint16_t> port{0};
};

ExporterState& exporter() {
  static ExporterState* s = new ExporterState;  // leaked: atexit-safe
  return *s;
}

void listener_loop(int listen_fd) {
  ExporterState& s = exporter();
  while (!s.stop.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 250);
    // Idle ticks keep epoch boundaries sharp even between scrapes, so
    // the first scrape after a quiet stretch still sees a full ring.
    window_tick();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void stop_exporter_at_exit() { stop_exporter(); }

/// DRX_METRICS_PORT autostart. Static-init ordering is safe for the same
/// reason the sampler's is: everything touched is function-local
/// leaked state.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("DRX_METRICS_PORT");
    if (env == nullptr || env[0] == '\0') return;
    char* end = nullptr;
    const long port = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || port < 0 || port > 65535) {
      DRX_LOG(kWarn) << "DRX_METRICS_PORT: bad port '" << env
                     << "', exporter disabled";
      return;
    }
    Result<std::uint16_t> bound =
        start_exporter(static_cast<std::uint16_t>(port));
    if (!bound.is_ok()) {
      // Port in use (or any bind failure) leaves telemetry off but the
      // process alive — the satellite-mandated fallback.
      DRX_LOG(kWarn) << "DRX_METRICS_PORT: exporter disabled: "
                     << bound.status().to_string();
      return;
    }
    std::atexit(stop_exporter_at_exit);
  }
};

EnvInit g_env_init;

}  // namespace

int register_scrape_provider(ScrapeProviderFn fn) {
  ProviderState& ps = providers();
  util::MutexLock lock(ps.mu);
  const int handle = ps.next_handle++;
  ps.providers.push_back(ProviderEntry{handle, std::move(fn)});
  return handle;
}

void unregister_scrape_provider(int handle) {
  ProviderState& ps = providers();
  util::MutexLock lock(ps.mu);
  ps.providers.erase(
      std::remove_if(ps.providers.begin(), ps.providers.end(),
                     [&](const ProviderEntry& p) {
                       return p.handle == handle;
                     }),
      ps.providers.end());
}

std::string render_prometheus() {
  window_tick();
  const MetricsSnapshot cumulative = live_snapshot();
  const WindowConfig cfg = window_config();
  const WindowView view = window_view();
  const std::string window_value = window_label_value(cfg);
  std::string out;

  // Counters stay cumulative — that is the Prometheus contract for the
  // counter type; scrapers window them with rate(). Label-split families
  // (per-shard counters) interleave in the sorted snapshot, so samples
  // are grouped per family before emission.
  std::map<std::string, std::string> counter_families;
  for (const CounterSample& c : cumulative.counters) {
    LabeledName ln = split_labels(c.name);
    append_family_sample(counter_families, sanitize(ln.name) + "_total",
                         render_labels(ln.labels),
                         static_cast<double>(c.value));
  }
  emit_families(out, counter_families, "counter");

  // Histograms are emitted from the sliding window: p95/p99 *now* is the
  // whole point of the live plane. The window label carries the horizon.
  for (const HistogramSample& h : view.delta.histograms) {
    const std::string prom = sanitize(h.name);
    out += "# TYPE ";
    out += prom;
    out += " histogram\n";
    std::vector<std::pair<std::string, std::string>> labels{
        {"window", window_value}};
    std::size_t last = kHistogramBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < last; ++b) {
      cum += h.buckets[b];
      labels.emplace_back("le",
                          format_double(static_cast<double>(
                              histogram_bucket_upper_bound(b))));
      out += prom;
      out += "_bucket";
      out += render_labels(labels);
      out += ' ';
      out += format_double(static_cast<double>(cum));
      out += '\n';
      labels.pop_back();
    }
    labels.emplace_back("le", "+Inf");
    out += prom;
    out += "_bucket";
    out += render_labels(labels);
    out += ' ';
    out += format_double(static_cast<double>(h.count));
    out += '\n';
    labels.pop_back();
    out += prom;
    out += "_sum";
    out += render_labels(labels);
    out += ' ';
    out += format_double(static_cast<double>(h.sum));
    out += '\n';
    out += prom;
    out += "_count";
    out += render_labels(labels);
    out += ' ';
    out += format_double(static_cast<double>(h.count));
    out += '\n';
  }

  // Gauges: per-session families arrive grouped by session, not by
  // family — same grouping treatment as counters.
  std::map<std::string, std::string> gauge_families;
  for (const ScrapeGauge& g : collect_gauges()) {
    append_family_sample(gauge_families, sanitize(g.name),
                         render_labels(g.labels), g.value);
  }
  emit_families(out, gauge_families, "gauge");
  return out;
}

std::string render_live_json() {
  JsonWriter w;
  w.begin_object();
  w.key("format").value("drx-live");
  w.key("version").value(std::uint64_t{1});
  w.key("metrics");
  metrics_to_json(live_snapshot(), w);
  w.key("gauges").begin_array();
  for (const ScrapeGauge& g : collect_gauges()) {
    w.begin_object();
    w.key("name").value(g.name);
    w.key("labels").begin_object();
    for (const auto& [k, v] : g.labels) w.key(k).value(v);
    w.end_object();
    w.key("value").value(g.value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

Result<std::uint16_t> start_exporter(std::uint16_t port) {
  ExporterState& s = exporter();
  util::MutexLock lock(s.mu);
  if (s.listen_fd >= 0) {
    return Status(ErrorCode::kFailedPrecondition, "exporter already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // scrape locally only
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    char msg[128];
    std::snprintf(msg, sizeof(msg), "bind 127.0.0.1:%u: %s",
                  static_cast<unsigned>(port), std::strerror(err));
    return Status(ErrorCode::kIoError, msg);
  }
  if (::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return Status(ErrorCode::kIoError,
                  std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const int err = errno;
    ::close(fd);
    return Status(ErrorCode::kIoError,
                  std::string("getsockname: ") + std::strerror(err));
  }
  const auto actual = static_cast<std::uint16_t>(ntohs(bound.sin_port));
  s.stop.store(false, std::memory_order_release);
  s.listen_fd = fd;
  s.port.store(actual, std::memory_order_release);
  s.thread = std::thread(listener_loop, fd);
  DRX_LOG(kInfo) << "metrics exporter listening on 127.0.0.1:" << actual;
  return actual;
}

void stop_exporter() {
  ExporterState& s = exporter();
  std::thread joinable;
  int fd = -1;
  {
    util::MutexLock lock(s.mu);
    if (s.listen_fd < 0) return;
    s.stop.store(true, std::memory_order_release);
    fd = s.listen_fd;
    s.listen_fd = -1;
    s.port.store(0, std::memory_order_release);
    joinable = std::move(s.thread);
  }
  joinable.join();  // loop notices stop within one poll timeout
  ::close(fd);
}

std::uint16_t exporter_port() noexcept {
  return exporter().port.load(std::memory_order_acquire);
}

Result<std::string> http_get(const std::string& host, std::uint16_t port,
                             const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  std::string("socket: ") + std::strerror(errno));
  }
  struct timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(ErrorCode::kInvalidArgument,
                  "http_get: host must be an IPv4 address literal");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    char msg[160];
    std::snprintf(msg, sizeof(msg), "connect %s:%u: %s", host.c_str(),
                  static_cast<unsigned>(port), std::strerror(err));
    return Status(ErrorCode::kIoError, msg);
  }
  char request[512];
  const int req_len = std::snprintf(
      request, sizeof(request),
      "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n",
      path.c_str(), host.c_str());
  if (!send_all(fd, request, static_cast<std::size_t>(req_len))) {
    ::close(fd);
    return Status(ErrorCode::kIoError, "http_get: short request write");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status(ErrorCode::kIoError, "http_get: truncated response");
  }
  const std::string_view status_line =
      std::string_view(response).substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string_view::npos) {
    return Status(ErrorCode::kIoError,
                  "http_get: " + std::string(status_line));
  }
  return response.substr(header_end + 4);
}

}  // namespace drx::obs
