#include "obs/analysis.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>

#include "obs/json.hpp"
#include "obs/slo.hpp"

namespace drx::obs::analysis {

namespace {

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

Severity severity_for_ratio(double ratio) {
  if (ratio >= kErrorRatio) return Severity::kError;
  if (ratio >= kWarnRatio) return Severity::kWarn;
  return Severity::kInfo;
}

}  // namespace

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

std::size_t count_severity(const Report& r, Severity s) {
  std::size_t n = 0;
  for (const Finding& f : r.findings) {
    if (f.severity == s) ++n;
  }
  return n;
}

bool has_errors(const Report& r) {
  return count_severity(r, Severity::kError) != 0;
}

std::string report_to_text(const Report& r) {
  std::string out = format(
      "drx_doctor: %zu finding(s) (%zu error, %zu warn, %zu info)\n",
      r.findings.size(), count_severity(r, Severity::kError),
      count_severity(r, Severity::kWarn), count_severity(r, Severity::kInfo));
  if (r.findings.empty()) {
    return "drx_doctor: no findings - all clear\n";
  }
  for (const Finding& f : r.findings) {
    out += format("  [%-5s] %s: %s (score %.2f)\n",
                  std::string(severity_name(f.severity)).c_str(),
                  f.id.c_str(), f.message.c_str(), f.score);
  }
  return out;
}

void report_to_json(const Report& r, JsonWriter& w) {
  w.begin_object();
  w.key("format").value("drx-doctor");
  w.key("version").value(std::uint64_t{1});
  w.key("errors").value(
      static_cast<std::uint64_t>(count_severity(r, Severity::kError)));
  w.key("warnings").value(
      static_cast<std::uint64_t>(count_severity(r, Severity::kWarn)));
  w.key("findings").begin_array();
  for (const Finding& f : r.findings) {
    w.begin_object();
    w.key("id").value(f.id);
    w.key("severity").value(severity_name(f.severity));
    w.key("score").value(f.score);
    w.key("message").value(f.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

ImbalanceStat imbalance(std::span<const double> values,
                        std::span<const int> ids) {
  ImbalanceStat s;
  s.n = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  std::size_t imax = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    if (values[i] > values[imax]) imax = i;
  }
  s.max = values[imax];
  s.mean = sum / static_cast<double>(values.size());
  s.ratio = s.mean > 0.0 ? s.max / s.mean : 1.0;
  s.argmax = ids.size() == values.size() ? ids[imax]
                                         : static_cast<int>(imax);
  return s;
}

namespace {

/// Reduces a profile table to a per-id load vector, then to an
/// ImbalanceStat. `include` filters entries (e.g. drop host rank -1);
/// `seed_ids` pre-seeds entities at zero load so participants that
/// recorded no traffic still weigh the distribution down.
template <typename Cell, typename IdFn, typename LoadFn, typename Pred>
ImbalanceStat reduce_imbalance(const std::vector<Cell>& cells,
                               std::span<const int> seed_ids, IdFn id_of,
                               LoadFn load_of, Pred include) {
  std::map<int, double> load;
  for (int id : seed_ids) {
    if (id >= 0) load[id] = 0.0;
  }
  for (const Cell& c : cells) {
    if (!include(c)) continue;
    load[id_of(c)] += load_of(c);
  }
  std::vector<double> values;
  std::vector<int> ids;
  values.reserve(load.size());
  ids.reserve(load.size());
  for (const auto& [id, v] : load) {
    ids.push_back(id);
    values.push_back(v);
  }
  return imbalance(values, ids);
}

}  // namespace

ImbalanceStat rank_chunk_imbalance(const ProfileSnapshot& p) {
  return reduce_imbalance(
      p.chunk, p.ranks, [](const ChunkCell& c) { return c.rank; },
      [](const ChunkCell& c) { return static_cast<double>(c.bytes); },
      [](const ChunkCell& c) { return c.rank >= 0; });
}

ImbalanceStat rank_pfs_imbalance(const ProfileSnapshot& p) {
  return reduce_imbalance(
      p.pfs, p.ranks, [](const PfsCell& c) { return c.rank; },
      [](const PfsCell& c) { return static_cast<double>(c.bytes); },
      [](const PfsCell& c) { return c.rank >= 0; });
}

ImbalanceStat pfs_server_imbalance(const ProfileSnapshot& p) {
  return reduce_imbalance(
      p.pfs, {}, [](const PfsCell& c) { return static_cast<int>(c.server); },
      [](const PfsCell& c) { return static_cast<double>(c.bytes); },
      [](const PfsCell&) { return true; });
}

ImbalanceStat aggregator_imbalance(const ProfileSnapshot& p) {
  // Not seeded with p.ranks: two-phase I/O legitimately appoints a subset
  // of ranks as aggregators, so only ranks that aggregated are compared.
  return reduce_imbalance(
      p.aggregator, {}, [](const AggCell& c) { return c.rank; },
      [](const AggCell& c) { return static_cast<double>(c.bytes); },
      [](const AggCell& c) { return c.rank >= 0; });
}

void analyze_profile(const ProfileSnapshot& p, std::vector<Finding>& out) {
  // Imbalance findings are emitted even when balanced (severity info):
  // comparing a BLOCK run against a BLOCK_CYCLIC run needs both scores.
  if (const ImbalanceStat s = rank_chunk_imbalance(p); s.n >= 2) {
    Finding f;
    f.id = "rank-imbalance";
    f.severity = severity_for_ratio(s.ratio);
    f.score = s.ratio;
    f.message = format(
        "rank %d does %.1fx mean chunk-traffic bytes "
        "(max %.0f vs mean %.0f over %zu ranks)",
        s.argmax, s.ratio, s.max, s.mean, s.n);
    if (f.severity != Severity::kInfo) {
      f.message += " - zone split is skewed; consider a BLOCK_CYCLIC "
                   "distribution";
    }
    out.push_back(std::move(f));
  }
  if (const ImbalanceStat s = rank_pfs_imbalance(p); s.n >= 2) {
    out.push_back(Finding{
        "pfs-rank-imbalance", severity_for_ratio(s.ratio), s.ratio,
        format("rank %d does %.1fx mean pfs bytes (max %.0f vs mean %.0f)",
               s.argmax, s.ratio, s.max, s.mean)});
  }
  if (const ImbalanceStat s = pfs_server_imbalance(p); s.n >= 2) {
    out.push_back(Finding{
        "pfs-hot-server", severity_for_ratio(s.ratio), s.ratio,
        format("pfs server %d serves %.1fx mean bytes - striping imbalance",
               s.argmax, s.ratio)});
  }
  if (const ImbalanceStat s = aggregator_imbalance(p); s.n >= 2) {
    out.push_back(Finding{
        "aggregator-skew", severity_for_ratio(s.ratio), s.ratio,
        format("aggregator on rank %d moves %.1fx mean device bytes",
               s.argmax, s.ratio)});
  }
}

void analyze_metrics(const MetricsSnapshot& snap, std::vector<Finding>& out) {
  if (const std::uint64_t dropped = snap.counter("obs.trace.dropped");
      dropped != 0) {
    out.push_back(Finding{
        "trace-dropped", Severity::kError, static_cast<double>(dropped),
        format("%llu trace event(s) dropped (ring full) - the trace is "
               "truncated",
               static_cast<unsigned long long>(dropped))});
  }

  const std::uint64_t hits = snap.counter("core.cache.hits");
  const std::uint64_t misses = snap.counter("core.cache.misses");
  const std::uint64_t evictions = snap.counter("core.cache.evictions");
  if (hits + misses >= 100) {
    const double hit_rate = static_cast<double>(hits) /
                            static_cast<double>(hits + misses);
    if (hit_rate < 0.5 && evictions * 2 > misses) {
      out.push_back(Finding{
          "cache-thrash", Severity::kWarn, 1.0 - hit_rate,
          format("cache hit rate %.0f%% with %llu evictions on %llu misses "
                 "- working set exceeds cache capacity",
                 hit_rate * 100.0,
                 static_cast<unsigned long long>(evictions),
                 static_cast<unsigned long long>(misses))});
    }
  }

  const std::uint64_t issued = snap.counter("core.cache.prefetch_issued");
  const std::uint64_t useful = snap.counter("core.cache.prefetch_useful");
  const std::uint64_t wasted = snap.counter("core.cache.prefetch_wasted");
  if (issued >= 16) {
    const double wasted_frac = static_cast<double>(wasted) /
                               static_cast<double>(issued);
    const double useful_frac = static_cast<double>(useful) /
                               static_cast<double>(issued);
    if (wasted_frac > 0.5) {
      out.push_back(Finding{
          "prefetch-waste", Severity::kWarn, wasted_frac,
          format("%.0f%% of %llu prefetched chunks were evicted unused - "
                 "read-ahead outruns the access pattern",
                 wasted_frac * 100.0,
                 static_cast<unsigned long long>(issued))});
    } else if (useful_frac < 0.5) {
      out.push_back(Finding{
          "prefetch-low-yield", Severity::kInfo, useful_frac,
          format("only %.0f%% of %llu prefetched chunks were used so far",
                 useful_frac * 100.0,
                 static_cast<unsigned long long>(issued))});
    }
  }

  // Causal stage attribution (docs/OBSERVABILITY.md): every closed op
  // bumps obs.op.dominant.<stage>; a majority stuck in one wait stage is
  // an actionable bottleneck, not noise.
  const std::uint64_t op_count = snap.counter("obs.op.count");
  if (op_count >= 16) {
    const double ops = static_cast<double>(op_count);
    const double queue_frac =
        static_cast<double>(snap.counter("obs.op.dominant.queue_wait")) / ops;
    const double lock_frac =
        static_cast<double>(snap.counter("obs.op.dominant.lock_wait")) / ops;
    if (queue_frac > 0.5) {
      out.push_back(Finding{
          "op-queue-wait-dominated", Severity::kWarn, queue_frac,
          format("%.0f%% of %llu ops spend most of their time waiting in "
                 "the async I/O queue - the pool is saturated; raise "
                 "DRX_IO_THREADS",
                 queue_frac * 100.0,
                 static_cast<unsigned long long>(op_count))});
    }
    if (lock_frac > 0.5) {
      out.push_back(Finding{
          "op-lock-wait-dominated", Severity::kWarn, lock_frac,
          format("%.0f%% of %llu ops spend most of their time blocked on "
                 "the ChunkCache mutex - shard the cache or shrink "
                 "critical sections",
                 lock_frac * 100.0,
                 static_cast<unsigned long long>(op_count))});
    }
  }

  // Run-coalescing health (docs/PERFORMANCE.md): the CopyPlan data plane
  // batches scatter/gather into contiguous memcpy runs, so elements per
  // run should be well above 1 on any realistic clip. A ratio near 1 on
  // a non-trivial volume means some path degenerated into per-element
  // copies (e.g. pathological strides or a consumer bypassing the plan).
  const std::uint64_t copy_runs = snap.counter("core.copy.runs");
  const std::uint64_t copy_elems = snap.counter("core.copy.elements");
  if (copy_runs != 0 && copy_elems >= 4096) {
    const double per_run = static_cast<double>(copy_elems) /
                           static_cast<double>(copy_runs);
    if (per_run < 4.0) {
      out.push_back(Finding{
          "copy-element-granular", Severity::kWarn, per_run,
          format("scatter/gather averaged %.1f element(s) per memcpy run "
                 "over %llu elements - copies are element-granular, not "
                 "run-coalesced",
                 per_run, static_cast<unsigned long long>(copy_elems))});
    }
  }

  // Shard hash health (docs/SERVING.md): the sharded ChunkCache exports
  // core.cache.shard.<i>.accesses. A hot shard means the chunk-id hash is
  // clustering (or the workload genuinely hammers one region) and the
  // per-shard locks degrade back toward a single global lock.
  {
    std::vector<double> shard_load;
    std::vector<int> shard_ids;
    double shard_total = 0.0;
    for (const CounterSample& c : snap.counters) {
      constexpr std::string_view kPrefix = "core.cache.shard.";
      constexpr std::string_view kSuffix = ".accesses";
      if (c.name.size() <= kPrefix.size() + kSuffix.size()) continue;
      if (c.name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
      if (c.name.compare(c.name.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) != 0) {
        continue;
      }
      const std::string idx = c.name.substr(
          kPrefix.size(), c.name.size() - kPrefix.size() - kSuffix.size());
      shard_ids.push_back(std::atoi(idx.c_str()));
      shard_load.push_back(static_cast<double>(c.value));
      shard_total += static_cast<double>(c.value);
    }
    if (shard_load.size() >= 2 && shard_total >= 1024.0) {
      const ImbalanceStat s = imbalance(shard_load, shard_ids);
      if (s.ratio >= kWarnRatio) {
        out.push_back(Finding{
            "cache-shard-imbalance", severity_for_ratio(s.ratio), s.ratio,
            format("cache shard %d takes %.1fx the mean access load "
                   "(max %.0f vs mean %.0f over %zu shards) - per-shard "
                   "locking degrades toward a single lock",
                   s.argmax, s.ratio, s.max, s.mean, s.n)});
      }
    }
  }

  // Serving fairness (docs/SERVING.md): ~Server publishes the min/max
  // completed-request count across sessions. A session pinned at zero
  // while others complete work means its submissions starved in the
  // bounded queue.
  const std::uint64_t sessions = snap.counter("serve.sessions");
  const std::uint64_t serve_done = snap.counter("serve.requests.completed");
  if (sessions >= 2 && serve_done >= 64) {
    const std::uint64_t smin = snap.counter("serve.session.completed_min");
    const std::uint64_t smax = snap.counter("serve.session.completed_max");
    if (smin == 0 && smax > 0) {
      out.push_back(Finding{
          "session-starvation", Severity::kError,
          static_cast<double>(smax),
          format("a session completed 0 requests while the busiest "
                 "completed %llu (%llu sessions) - submissions starved in "
                 "the serve queue",
                 static_cast<unsigned long long>(smax),
                 static_cast<unsigned long long>(sessions))});
    } else if (smin > 0 &&
               static_cast<double>(smax) / static_cast<double>(smin) >=
                   kErrorRatio) {
      const double ratio =
          static_cast<double>(smax) / static_cast<double>(smin);
      out.push_back(Finding{
          "session-starvation", Severity::kWarn, ratio,
          format("busiest session completed %.1fx the slowest (%llu vs "
                 "%llu over %llu sessions) - serving is unfair under load",
                 ratio, static_cast<unsigned long long>(smax),
                 static_cast<unsigned long long>(smin),
                 static_cast<unsigned long long>(sessions))});
    }
  }

  // Codec economics (docs/COMPRESSION.md). Uncompressed writers sample
  // every 64th chunk with an RLE trial (core.codec.sample_ratio_pct, in
  // percent of raw size); a low median on a real write volume means the
  // workload would pay for DRX_COMPRESS. Conversely, an active codec
  // whose stored bytes barely undercut raw is pure CPU overhead.
  const std::uint64_t codec_raw = snap.counter("core.codec.bytes_raw");
  const std::uint64_t codec_stored = snap.counter("core.codec.bytes_stored");
  const std::uint64_t codec_samples = snap.counter("core.codec.samples");
  if (codec_raw == 0 && codec_samples >= 8) {
    for (const HistogramSample& h : snap.histograms) {
      if (h.name != "core.codec.sample_ratio_pct") continue;
      const HistogramSummary s = summarize_histogram(h);
      const double p50 = static_cast<double>(s.p50);
      if (s.count >= 8 && p50 <= 60.0) {
        out.push_back(Finding{
            "compression-would-pay", Severity::kInfo, p50 / 100.0,
            format("entropy samples of %llu uncompressed chunk writes "
                   "compress to ~%.0f%% of raw (median RLE trial) - "
                   "recreating the array with DRX_COMPRESS=rle would cut "
                   "PFS bytes",
                   static_cast<unsigned long long>(codec_samples), p50)});
      }
      break;
    }
  }
  if (codec_stored != 0 && codec_raw >= 1u << 22) {
    const double ratio = static_cast<double>(codec_raw) /
                         static_cast<double>(codec_stored);
    if (ratio < 1.1) {
      out.push_back(Finding{
          "compression-ineffective", Severity::kWarn, ratio,
          format("codec stored %llu bytes for %llu raw (%.2fx) - the data "
                 "barely compresses; DRX_COMPRESS=off avoids the encode "
                 "cost",
                 static_cast<unsigned long long>(codec_stored),
                 static_cast<unsigned long long>(codec_raw), ratio)});
    } else {
      out.push_back(Finding{
          "compression-effective", Severity::kInfo, ratio,
          format("codec cut %llu raw bytes to %llu stored (%.2fx) - PFS "
                 "traffic saved %.0f%%",
                 static_cast<unsigned long long>(codec_raw),
                 static_cast<unsigned long long>(codec_stored), ratio,
                 (1.0 - 1.0 / ratio) * 100.0)});
    }
  }
}

MetricsSnapshot metrics_from_json(const JsonValue& doc) {
  MetricsSnapshot snap;
  if (const JsonValue* counters = doc.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, v] : counters->object) {
      snap.counters.push_back(CounterSample{name, v.as_uint()});
    }
  }
  if (const JsonValue* hists = doc.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [name, v] : hists->object) {
      HistogramSample h;
      h.name = name;
      h.count = v.uint_at("count");
      h.sum = v.uint_at("sum");
      if (const JsonValue* buckets = v.find("buckets");
          buckets != nullptr && buckets->is_array()) {
        const std::size_t n =
            std::min(buckets->array.size(), kHistogramBuckets);
        for (std::size_t b = 0; b < n; ++b) {
          h.buckets[b] = buckets->array[b].as_uint();
        }
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  return snap;
}

Result<TraceSummary> summarize_trace(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status(ErrorCode::kCorrupt,
                  "not a trace document (no traceEvents array)");
  }
  TraceSummary t;

  struct Interval {
    double start, end;
  };
  std::map<int, std::vector<Interval>> by_rank;
  std::uint64_t x_events = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr) continue;
    if (ph->as_string() == "s") ++t.flows;
    if (ph->as_string() != "X") continue;
    ++x_events;
    const JsonValue* cat = e.find("cat");
    if (cat != nullptr && cat->as_string() == "op") {
      OpStat op;
      const JsonValue* name = e.find("name");
      op.name = name != nullptr ? std::string(name->as_string()) : "?";
      op.dur_us = e.number_at("dur");
      op.rank = static_cast<int>(e.number_at("pid")) - 1;
      if (const JsonValue* args = e.find("args"); args != nullptr) {
        op.op = args->uint_at("op");
        for (std::size_t s = 0; s < kStageCount; ++s) {
          op.stage_us[s] =
              args->number_at(std::string(stage_name(static_cast<Stage>(s))) +
                              "_ns") /
              1000.0;
        }
        if (const JsonValue* dom = args->find("dominant"); dom != nullptr) {
          op.dominant = std::string(dom->as_string());
        }
      }
      t.ops.push_back(std::move(op));
    }
    const int rank = static_cast<int>(e.number_at("pid")) - 1;
    const double ts = e.number_at("ts");
    const double dur = e.number_at("dur");
    by_rank[rank].push_back(Interval{ts, ts + dur});
    if (dur > t.longest_dur_us) {
      t.longest_dur_us = dur;
      t.longest_rank = rank;
      const JsonValue* name = e.find("name");
      t.longest_name = name != nullptr ? std::string(name->as_string())
                                       : std::string("?");
    }
  }

  for (auto& [rank, intervals] : by_rank) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    // Union of intervals: nested/overlapping spans only count once.
    double busy = 0.0;
    double cover_end = -1.0;
    for (const Interval& iv : intervals) {
      if (iv.start >= cover_end) {
        busy += iv.end - iv.start;
        cover_end = iv.end;
      } else if (iv.end > cover_end) {
        busy += iv.end - cover_end;
        cover_end = iv.end;
      }
    }
    if (rank >= 0) {
      t.per_rank.push_back(RankBusy{rank, busy});
      t.critical_path_us = std::max(t.critical_path_us, busy);
    }
  }

  // The writer's own metadata record is authoritative for totals.
  if (const JsonValue* meta = doc.find("metadata"); meta != nullptr) {
    t.events = meta->uint_at("events", x_events);
    t.dropped = meta->uint_at("dropped");
  } else {
    t.events = x_events;
  }
  return t;
}

void analyze_trace(const TraceSummary& t, std::vector<Finding>& out) {
  if (t.dropped != 0) {
    out.push_back(Finding{
        "trace-dropped", Severity::kError, static_cast<double>(t.dropped),
        format("%llu trace event(s) dropped (ring full) - the trace is "
               "truncated",
               static_cast<unsigned long long>(t.dropped))});
  }
  if (t.per_rank.size() >= 2) {
    std::vector<double> busy;
    std::vector<int> ids;
    for (const RankBusy& rb : t.per_rank) {
      busy.push_back(rb.busy_us);
      ids.push_back(rb.rank);
    }
    const ImbalanceStat s = imbalance(busy, ids);
    out.push_back(Finding{
        "rank-busy-imbalance", severity_for_ratio(s.ratio), s.ratio,
        format("rank %d is busy %.1fx the mean (%.1f ms vs %.1f ms) - it "
               "is the straggler on the critical path",
               s.argmax, s.ratio, s.max / 1000.0, s.mean / 1000.0)});
  }
  if (t.events != 0 && !t.longest_name.empty()) {
    out.push_back(Finding{
        "critical-path", Severity::kInfo, t.critical_path_us / 1000.0,
        format("critical path %.1f ms; longest span \"%s\" %.1f ms on "
               "rank %d",
               t.critical_path_us / 1000.0, t.longest_name.c_str(),
               t.longest_dur_us / 1000.0, t.longest_rank)});
  }
  if (!t.ops.empty()) {
    const OpStat* slowest = &t.ops.front();
    for (const OpStat& op : t.ops) {
      if (op.dur_us > slowest->dur_us) slowest = &op;
    }
    double dom_us = 0.0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      dom_us = std::max(dom_us, slowest->stage_us[s]);
    }
    out.push_back(Finding{
        "op-critical-path", Severity::kInfo, slowest->dur_us / 1000.0,
        format("slowest of %zu op(s): \"%s\" (op %llu) %.1f ms on rank %d, "
               "dominant stage %s (%.1f ms)",
               t.ops.size(), slowest->name.c_str(),
               static_cast<unsigned long long>(slowest->op),
               slowest->dur_us / 1000.0, slowest->rank,
               slowest->dominant.empty() ? "?" : slowest->dominant.c_str(),
               dom_us / 1000.0)});
  }
}

void analyze_flight(const JsonValue& doc, std::vector<Finding>& out) {
  if (const JsonValue* fmt = doc.find("format");
      fmt == nullptr || fmt->as_string() != "drx-flight") {
    out.push_back(Finding{
        "flight-bad-format", Severity::kError, 0.0,
        "not a drx-flight document (missing format marker)"});
    return;
  }
  const JsonValue* reason_v = doc.find("reason");
  const std::string reason(reason_v != nullptr ? reason_v->as_string()
                                               : "unknown");

  // Flatten the per-thread rings; track the most recent op on record.
  struct Rec {
    std::uint64_t seq = 0;
    std::uint64_t op = 0;
    std::uint64_t ts_ns = 0;
    double dur_us = 0.0;
    std::string kind;
    std::string name;
    int rank = -1;
  };
  std::vector<Rec> recs;
  std::size_t threads = 0;
  if (const JsonValue* tarr = doc.find("threads");
      tarr != nullptr && tarr->is_array()) {
    threads = tarr->array.size();
    for (const JsonValue& t : tarr->array) {
      const JsonValue* rarr = t.find("records");
      if (rarr == nullptr || !rarr->is_array()) continue;
      for (const JsonValue& r : rarr->array) {
        Rec rec;
        rec.seq = r.uint_at("seq");
        rec.op = r.uint_at("op");
        rec.ts_ns = r.uint_at("ts_ns");
        rec.dur_us = r.number_at("dur_ns") / 1000.0;
        const JsonValue* kind = r.find("kind");
        rec.kind = kind != nullptr ? std::string(kind->as_string()) : "?";
        const JsonValue* name = r.find("name");
        rec.name = name != nullptr ? std::string(name->as_string()) : "?";
        rec.rank = static_cast<int>(r.number_at("rank", -1.0));
        recs.push_back(std::move(rec));
      }
    }
  }

  const Severity sev =
      reason == "on-demand" ? Severity::kInfo : Severity::kWarn;
  out.push_back(Finding{
      "flight-dump", sev, static_cast<double>(recs.size()),
      format("flight recorder dump (%s): %zu record(s) across %zu "
             "thread(s)",
             reason.c_str(), recs.size(), threads)});
  if (recs.empty()) return;

  // The causal chain of the most recent op: every surviving ring record
  // carrying that op id, in sequence order — what the op did, across
  // threads, right up to the failure.
  std::uint64_t last_seq = 0;
  std::uint64_t last_op = 0;
  for (const Rec& r : recs) {
    if (r.op != 0 && r.seq >= last_seq) {
      last_seq = r.seq;
      last_op = r.op;
    }
  }
  if (last_op == 0) return;
  std::vector<const Rec*> chain;
  for (const Rec& r : recs) {
    if (r.op == last_op) chain.push_back(&r);
  }
  std::sort(chain.begin(), chain.end(),
            [](const Rec* a, const Rec* b) { return a->seq < b->seq; });
  std::string path;
  constexpr std::size_t kMaxChainNames = 8;
  for (std::size_t i = 0; i < chain.size() && i < kMaxChainNames; ++i) {
    if (i != 0) path += " -> ";
    path += chain[i]->name;
    if (chain[i]->kind == "flow_out") path += "(submit)";
    if (chain[i]->kind == "flow_in") path += "(dequeue)";
  }
  if (chain.size() > kMaxChainNames) path += " -> ...";
  out.push_back(Finding{
      "flight-causal-chain", Severity::kInfo,
      static_cast<double>(chain.size()),
      format("last op %llu: %zu record(s): ",
             static_cast<unsigned long long>(last_op), chain.size()) +
          path});
}

void analyze_series(const JsonValue& doc, std::vector<Finding>& out,
                    std::size_t min_stall_samples) {
  const JsonValue* samples = doc.find("samples");
  if (samples == nullptr || !samples->is_array() ||
      samples->array.size() < 2) {
    return;
  }

  // Total byte movement per sample: any counter whose name mentions
  // "bytes" (core.bytes_read, pfs.bytes_written, mpio.bytes_read, ...).
  std::vector<double> activity;
  std::vector<double> t_us;
  activity.reserve(samples->array.size());
  for (const JsonValue& s : samples->array) {
    double total = 0.0;
    if (const JsonValue* counters = s.find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, v] : counters->object) {
        if (name.find("bytes") != std::string::npos) total += v.as_number();
      }
    }
    activity.push_back(total);
    t_us.push_back(s.number_at("t_us"));
  }

  // Longest run of zero-delta samples with activity resuming afterwards.
  std::size_t best_len = 0;
  std::size_t best_end = 0;
  std::size_t run = 0;
  for (std::size_t i = 1; i < activity.size(); ++i) {
    if (activity[i] - activity[i - 1] <= 0.0) {
      ++run;
    } else {
      if (run > best_len) {
        best_len = run;
        best_end = i - 1;
      }
      run = 0;
    }
  }
  if (best_len >= min_stall_samples) {
    const double stall_ms =
        (t_us[best_end] - t_us[best_end - best_len]) / 1000.0;
    out.push_back(Finding{
        "io-stall", Severity::kWarn, static_cast<double>(best_len),
        format("I/O stalled for %zu consecutive samples (~%.1f ms) before "
               "resuming - possible flush stall or lost overlap",
               best_len, stall_ms)});
  }
  out.push_back(Finding{
      "series", Severity::kInfo, static_cast<double>(samples->array.size()),
      format("time series: %zu samples spanning %.1f ms",
             samples->array.size(), (t_us.back() - t_us.front()) / 1000.0)});
}

namespace {

const HistogramSample* find_histogram(const MetricsSnapshot& snap,
                                      std::string_view name) {
  for (const HistogramSample& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

void analyze_window(const JsonValue& doc, std::vector<Finding>& out) {
  if (const JsonValue* fmt = doc.find("format");
      fmt == nullptr || fmt->as_string() != "drx-window") {
    out.push_back(Finding{
        "window-bad-format", Severity::kError, 0.0,
        "not a drx-window document (missing format marker)"});
    return;
  }

  // Slow window: the merged full-horizon view. Fast window: the latest
  // *completed* epoch delta. Trailing baseline: the epochs before it.
  MetricsSnapshot slow;
  std::uint64_t slow_span_us = 0;
  if (const JsonValue* w = doc.find("window"); w != nullptr) {
    if (const JsonValue* m = w->find("metrics"); m != nullptr) {
      slow = metrics_from_json(*m);
    }
    slow_span_us = w->uint_at("span_us");
  }
  MetricsSnapshot fast;
  MetricsSnapshot baseline;
  std::size_t trailing_epochs = 0;
  if (const JsonValue* deltas = doc.find("epoch_deltas");
      deltas != nullptr && deltas->is_array() && !deltas->array.empty()) {
    for (std::size_t i = 0; i + 1 < deltas->array.size(); ++i) {
      const JsonValue* m = deltas->array[i].find("metrics");
      if (m != nullptr) baseline.merge(metrics_from_json(*m));
      ++trailing_epochs;
    }
    if (const JsonValue* m = deltas->array.back().find("metrics");
        m != nullptr) {
      fast = metrics_from_json(*m);
    }
  }
  // With no completed epoch yet, the merged view is the only window —
  // burn rates then use it for both sides (degenerates to single-window
  // alerting, which beats silence on a process that just started).
  const bool have_fast = !fast.histograms.empty() || !fast.counters.empty();

  // ---- slo-burn-rate --------------------------------------------------
  if (const JsonValue* slos = doc.find("slo");
      slos != nullptr && slos->is_array()) {
    for (const JsonValue& t : slos->array) {
      const JsonValue* hist_name = t.find("histogram");
      if (hist_name == nullptr) continue;
      SloTarget target;
      target.histogram = std::string(hist_name->as_string());
      target.target_us = t.uint_at("target_us");
      target.budget = t.number_at("budget", 0.01);
      const HistogramSample* slow_h = find_histogram(slow, target.histogram);
      if (slow_h == nullptr || slow_h->count == 0) continue;
      const HistogramSample* fast_h =
          have_fast ? find_histogram(fast, target.histogram) : slow_h;
      if (fast_h == nullptr) fast_h = slow_h;
      const SloEval slow_eval = evaluate_slo(target, *slow_h);
      const SloEval fast_eval = evaluate_slo(target, *fast_h);
      const double burn = std::min(slow_eval.burn_rate, fast_eval.burn_rate);
      Severity sev = Severity::kInfo;
      if (slow_h->count >= kWindowMinCount) {
        if (burn >= kBurnError) {
          sev = Severity::kError;
        } else if (burn >= kBurnWarn) {
          sev = Severity::kWarn;
        }
      }
      out.push_back(Finding{
          "slo-burn-rate", sev, burn,
          format("%s: burning error budget at %.1fx fast / %.1fx slow "
                 "(target <=%lluus, budget %.2f%%; %llu/%llu over target "
                 "in the %.1fs window)",
                 target.histogram.c_str(), fast_eval.burn_rate,
                 slow_eval.burn_rate,
                 static_cast<unsigned long long>(target.target_us),
                 target.budget * 100.0,
                 static_cast<unsigned long long>(slow_eval.bad),
                 static_cast<unsigned long long>(slow_eval.total),
                 static_cast<double>(slow_span_us) / 1e6)});
    }
  }

  // ---- window-regression ----------------------------------------------
  // Latency histograms only: a shifted byte-size distribution is a
  // workload change, not a regression.
  if (have_fast && trailing_epochs > 0) {
    for (const HistogramSample& cur : fast.histograms) {
      if (cur.name.size() < 3 ||
          cur.name.compare(cur.name.size() - 3, 3, "_us") != 0) {
        continue;
      }
      const HistogramSample* base = find_histogram(baseline, cur.name);
      if (base == nullptr) continue;
      if (cur.count < kWindowMinCount || base->count < kWindowMinCount) {
        continue;
      }
      const HistogramSummary cur_s = summarize_histogram(cur);
      const HistogramSummary base_s = summarize_histogram(*base);
      if (base_s.p95 == 0) continue;
      const double ratio = static_cast<double>(cur_s.p95) /
                           static_cast<double>(base_s.p95);
      if (ratio < kRegressWarnRatio) continue;
      out.push_back(Finding{
          "window-regression",
          ratio >= kRegressErrorRatio ? Severity::kError : Severity::kWarn,
          ratio,
          format("%s: p95 %.1fx the trailing baseline (%llu vs %lluus "
                 "over %zu epoch(s)) - latency regressed within the live "
                 "window",
                 cur.name.c_str(), ratio,
                 static_cast<unsigned long long>(cur_s.p95),
                 static_cast<unsigned long long>(base_s.p95),
                 trailing_epochs)});
    }
  }

  out.push_back(Finding{
      "window", Severity::kInfo, static_cast<double>(slow_span_us) / 1e6,
      format("live window: %.1fs horizon, %zu trailing epoch(s), "
             "%zu histogram(s) in view",
             static_cast<double>(slow_span_us) / 1e6, trailing_epochs,
             slow.histograms.size())});
}

}  // namespace drx::obs::analysis
