#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace drx::obs {

namespace detail {
std::atomic<bool> g_profile_enabled{false};
}  // namespace detail

namespace {

struct ChunkCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes = 0;
};

struct PfsCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
};

struct AggCounts {
  std::uint64_t runs = 0;
  std::uint64_t bytes = 0;
};

/// All tables behind one mutex: profiling is opt-in, and a std::map keyed
/// by (rank, key) gives deterministic dump order for free. The leaf lock
/// of the whole obs layer — callers may hold cache or pfs server locks.
struct ProfileState {
  util::Mutex mu;
  std::string path DRX_GUARDED_BY(mu);
  /// Participants (RankScope), traffic or not.
  std::set<int> ranks DRX_GUARDED_BY(mu);
  std::map<std::pair<int, std::uint64_t>, ChunkCounts> chunk DRX_GUARDED_BY(mu);
  std::map<std::pair<int, std::uint32_t>, PfsCounts> pfs DRX_GUARDED_BY(mu);
  std::map<int, AggCounts> aggregator DRX_GUARDED_BY(mu);
};

ProfileState& state() {
  static ProfileState* s = new ProfileState;  // leaked: used from atexit
  return *s;
}

void flush_profile_at_exit() {
  const Status s = flush_profile();
  if (!s.is_ok()) {
    std::fprintf(stderr, "[drx E] DRX_PROFILE flush failed: %s\n",
                 s.message().c_str());
  }
}

/// Reads DRX_PROFILE once at startup; set_profile_path can override later.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("DRX_PROFILE");
    if (env != nullptr && env[0] != '\0') {
      ProfileState& s = state();
      {
        util::MutexLock lock(s.mu);
        s.path = env;
      }
      detail::g_profile_enabled.store(true, std::memory_order_relaxed);
      std::atexit(flush_profile_at_exit);
    }
  }
};
EnvInit g_env_init;

}  // namespace

namespace detail {

void profile_chunk_slow(int op, std::uint64_t address, std::uint64_t bytes) {
  const int rank = current_rank();
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  ChunkCounts& cell = s.chunk[{rank, address}];
  switch (static_cast<ChunkOp>(op)) {
    case ChunkOp::kRead: ++cell.reads; break;
    case ChunkOp::kWrite: ++cell.writes; break;
    case ChunkOp::kCacheMiss: ++cell.misses; break;
  }
  cell.bytes += bytes;
}

void profile_pfs_slow(bool write, std::uint32_t server, std::uint64_t bytes) {
  const int rank = current_rank();
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  PfsCounts& cell = s.pfs[{rank, server}];
  if (write) {
    ++cell.writes;
  } else {
    ++cell.reads;
  }
  cell.bytes += bytes;
}

void profile_aggregator_slow(int rank, std::uint64_t runs,
                             std::uint64_t bytes) {
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  AggCounts& cell = s.aggregator[rank];
  cell.runs += runs;
  cell.bytes += bytes;
}

void profile_rank_slow(int rank) {
  if (rank < 0) return;  // the host thread is not a participant
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  s.ranks.insert(rank);
}

}  // namespace detail

void set_profile_path(const std::string& path) {
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  s.path = path;
  detail::g_profile_enabled.store(!path.empty(), std::memory_order_relaxed);
}

std::string profile_path() {
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  return s.path;
}

ProfileSnapshot profile_snapshot() {
  ProfileSnapshot snap;
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  snap.ranks.assign(s.ranks.begin(), s.ranks.end());
  snap.chunk.reserve(s.chunk.size());
  for (const auto& [key, c] : s.chunk) {
    snap.chunk.push_back(ChunkCell{key.first, key.second, c.reads, c.writes,
                                   c.misses, c.bytes});
  }
  snap.pfs.reserve(s.pfs.size());
  for (const auto& [key, c] : s.pfs) {
    snap.pfs.push_back(
        PfsCell{key.first, key.second, c.reads, c.writes, c.bytes});
  }
  snap.aggregator.reserve(s.aggregator.size());
  for (const auto& [rank, c] : s.aggregator) {
    snap.aggregator.push_back(AggCell{rank, c.runs, c.bytes});
  }
  return snap;
}

void clear_profile() {
  ProfileState& s = state();
  util::MutexLock lock(s.mu);
  s.ranks.clear();
  s.chunk.clear();
  s.pfs.clear();
  s.aggregator.clear();
}

void profile_to_json(const ProfileSnapshot& snap, JsonWriter& w) {
  w.begin_object();
  w.key("format").value("drx-profile");
  w.key("version").value(std::uint64_t{1});
  w.key("ranks").begin_array();
  for (int r : snap.ranks) w.value(r);
  w.end_array();
  w.key("chunk").begin_array();
  for (const ChunkCell& c : snap.chunk) {
    w.begin_object();
    w.key("rank").value(c.rank);
    w.key("address").value(c.address);
    w.key("reads").value(c.reads);
    w.key("writes").value(c.writes);
    w.key("misses").value(c.misses);
    w.key("bytes").value(c.bytes);
    w.end_object();
  }
  w.end_array();
  w.key("pfs").begin_array();
  for (const PfsCell& c : snap.pfs) {
    w.begin_object();
    w.key("rank").value(c.rank);
    w.key("server").value(static_cast<std::uint64_t>(c.server));
    w.key("reads").value(c.reads);
    w.key("writes").value(c.writes);
    w.key("bytes").value(c.bytes);
    w.end_object();
  }
  w.end_array();
  w.key("aggregator").begin_array();
  for (const AggCell& c : snap.aggregator) {
    w.begin_object();
    w.key("rank").value(c.rank);
    w.key("runs").value(c.runs);
    w.key("bytes").value(c.bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

Result<ProfileSnapshot> profile_from_json(std::string_view text) {
  DRX_ASSIGN_OR_RETURN(JsonValue doc, json_parse(text));
  if (doc.find("format") == nullptr ||
      doc.find("format")->as_string() != "drx-profile") {
    return Status(ErrorCode::kCorrupt, "not a drx-profile document");
  }
  if (doc.uint_at("version") != 1) {
    return Status(ErrorCode::kUnsupported, "unknown drx-profile version");
  }
  ProfileSnapshot snap;
  if (const JsonValue* arr = doc.find("ranks"); arr != nullptr) {
    for (const JsonValue& e : arr->array) {
      snap.ranks.push_back(static_cast<int>(e.as_int()));
    }
  }
  if (const JsonValue* arr = doc.find("chunk"); arr != nullptr) {
    for (const JsonValue& e : arr->array) {
      snap.chunk.push_back(ChunkCell{
          static_cast<int>(e.number_at("rank", -1)), e.uint_at("address"),
          e.uint_at("reads"), e.uint_at("writes"), e.uint_at("misses"),
          e.uint_at("bytes")});
    }
  }
  if (const JsonValue* arr = doc.find("pfs"); arr != nullptr) {
    for (const JsonValue& e : arr->array) {
      snap.pfs.push_back(
          PfsCell{static_cast<int>(e.number_at("rank", -1)),
                  static_cast<std::uint32_t>(e.uint_at("server")),
                  e.uint_at("reads"), e.uint_at("writes"), e.uint_at("bytes")});
    }
  }
  if (const JsonValue* arr = doc.find("aggregator"); arr != nullptr) {
    for (const JsonValue& e : arr->array) {
      snap.aggregator.push_back(
          AggCell{static_cast<int>(e.number_at("rank", -1)),
                  e.uint_at("runs"), e.uint_at("bytes")});
    }
  }
  return snap;
}

Status write_profile(const std::string& path) {
  JsonWriter w;
  profile_to_json(profile_snapshot(), w);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open profile file: " + path);
  }
  out << w.str() << "\n";
  if (!out.good()) {
    return Status(ErrorCode::kIoError, "short write to profile file: " + path);
  }
  DRX_LOG_INFO << "wrote access profile to " << path;
  return Status::ok();
}

Status flush_profile() {
  const std::string path = profile_path();
  if (path.empty()) return Status::ok();
  return write_profile(path);
}

}  // namespace drx::obs
