#include "obs/opctx.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drx::obs {

namespace {

// Interned once; indexed by Stage.
struct StageMetricIds {
  MetricId stage_us[kStageCount];
  MetricId dominant[kStageCount];
};

const StageMetricIds& stage_metric_ids() {
  static const StageMetricIds ids = [] {
    StageMetricIds out;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const std::string name = stage_name(static_cast<Stage>(i));
      out.stage_us[i] = histogram_id("obs.op.stage." + name + "_us");
      out.dominant[i] = counter_id("obs.op.dominant." + name);
    }
    return out;
  }();
  return ids;
}

const MetricId kOpCount = counter_id("obs.op.count");
const MetricId kOpTotalUs = histogram_id("obs.op.total_us");

}  // namespace

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kLockWait: return "lock_wait";
    case Stage::kCacheFault: return "cache_fault";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kIoService: return "io_service";
    case Stage::kCopy: return "copy";
    case Stage::kOther: return "other";
  }
  return "unknown";
}

OpScope::OpScope(const char* name) noexcept {
  if (detail::t_op.op != 0) return;  // nested: the outermost scope wins
  std::uint64_t id =
      detail::g_next_op.fetch_add(1, std::memory_order_relaxed) + 1;
  if (id == 0) id = detail::g_next_op.fetch_add(1, std::memory_order_relaxed);
  detail::OpSlot& slot = detail::op_slots()[id & (detail::kOpSlots - 1)];
  slot.op.store(id, std::memory_order_relaxed);
  for (auto& ns : slot.stage_ns) ns.store(0, std::memory_order_relaxed);
  detail::t_op = OpContext{id, detail::t_current_span};
  name_ = name;
  op_id_ = id;
  start_ns_ = trace_now_ns();
}

OpScope::~OpScope() {
  if (name_ == nullptr) return;
  const std::uint64_t total_ns = trace_now_ns() - start_ns_;

  detail::OpSlot& slot =
      detail::op_slots()[op_id_ & (detail::kOpSlots - 1)];
  std::uint64_t stage_ns[kStageCount] = {};
  std::uint64_t attributed = 0;
  for (std::size_t i = 0; i + 1 < kStageCount; ++i) {  // kOther derived below
    stage_ns[i] = slot.stage_ns[i].load(std::memory_order_relaxed);
    attributed += stage_ns[i];
  }
  // Stage clocks overlap the op's wall clock from other threads (a worker
  // can service I/O while the op also copies), so the attributed sum can
  // exceed wall time; clamp `other` at zero rather than going negative.
  stage_ns[static_cast<std::size_t>(Stage::kOther)] =
      total_ns > attributed ? total_ns - attributed : 0;

  std::size_t dominant = static_cast<std::size_t>(Stage::kOther);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (stage_ns[i] > stage_ns[dominant]) dominant = i;
  }

  const StageMetricIds& ids = stage_metric_ids();
  Registry& reg = registry();
  reg.counter(kOpCount).add();
  reg.counter(ids.dominant[dominant]).add();
  reg.histogram(kOpTotalUs).observe(total_ns / 1000);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (stage_ns[i] != 0) {
      reg.histogram(ids.stage_us[i]).observe(stage_ns[i] / 1000);
    }
  }

  if (trace_enabled() || flight_enabled()) {
    record_op_summary(name_, start_ns_, total_ns, op_id_, stage_ns,
                      static_cast<Stage>(dominant));
  }

  // Release the slot: late adds from stragglers of this op now miss (by
  // design), and the next op hashing here starts clean.
  slot.op.store(0, std::memory_order_relaxed);
  detail::t_op = OpContext{};
}

}  // namespace drx::obs
