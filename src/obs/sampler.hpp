// Time-series metric sampling: a background thread snapshots the live
// metrics view (obs::live_snapshot) every DRX_STATS_INTERVAL milliseconds
// into a fixed-capacity in-memory ring, and the series is dumped as JSON
// at exit (DRX_STATS_SERIES, default "drx_series.json"). Turns averaged-
// away transients — read-ahead ramp-up, write-behind flush stalls — into
// visible rate-over-time curves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace drx::obs {

class JsonWriter;

/// One timestamped snapshot.
struct Sample {
  std::uint64_t t_us = 0;  ///< trace clock (process-relative) microseconds
  MetricsSnapshot metrics;
};

/// Fixed-capacity ring of samples; push overwrites the oldest once full.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity);

  void push(Sample s);
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }

  /// Samples oldest-first (at most capacity() of them).
  [[nodiscard]] std::vector<Sample> ordered() const;

 private:
  std::vector<Sample> slots_;
  std::size_t head_ = 0;  ///< next slot to write
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
};

inline constexpr std::size_t kDefaultSeriesCapacity = 4096;

/// Starts the sampler thread (idempotent: restarts with new settings if
/// already running). `interval_ms` must be >= 1.
void start_sampler(std::uint64_t interval_ms,
                   std::size_t capacity = kDefaultSeriesCapacity);

/// Stops and joins the sampler thread; the collected series survives and
/// stays readable via sampler_series(). Safe when not running.
void stop_sampler();

[[nodiscard]] bool sampler_running();

/// Takes one sample immediately (works with or without the thread; used
/// at the end of multi-rank runs so short jobs get a final data point).
void sampler_sample_now();

/// Copy of the collected series, oldest-first.
[[nodiscard]] std::vector<Sample> sampler_series();

/// Drops all collected samples (test isolation).
void clear_sampler_series();

/// Emits the series as one JSON object (format "drx-series" v1): each
/// sample carries its timestamp and the counter values at that instant.
void series_to_json(const std::vector<Sample>& series, JsonWriter& w);

/// Writes the current series as JSON to `path`.
[[nodiscard]] Status write_series(const std::string& path);

}  // namespace drx::obs
