// Always-on flight recorder: the last N span/flow/op records per thread,
// kept in fixed-size lock-free rings and dumped as JSON on sticky deferred
// I/O errors, fatal signals (SIGSEGV/SIGABRT), or on demand
// (docs/OBSERVABILITY.md).
//
// Unlike tracing (opt-in via DRX_TRACE, unbounded until flushed), the
// flight recorder is on by default with no environment variable: memory is
// fixed (kFlightThreads rings x kFlightRingSize records), recording is a
// relaxed-atomic fast path plus one clockless ring push, and the only
// output ever written is a post-mortem. set_flight_enabled(false) exists
// for benchmarks that want to measure the instrumentation floor.
//
// Record names must be string literals: rings store the pointer, and the
// fatal-signal dump path reads them from a signal handler where no
// allocation or locking is possible.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace drx::obs {

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

/// True iff flight records are being captured (default: true).
inline bool flight_enabled() noexcept {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

/// Benchmark/test hook; the recorder is meant to stay on in production.
void set_flight_enabled(bool enabled) noexcept;

/// Where dumps land. Default "drx-flight.json" in the working directory.
/// The path is copied into a fixed buffer (truncated if longer than
/// ~511 bytes) so the fatal-signal writer never touches the heap.
void set_flight_path(const std::string& path) noexcept;
[[nodiscard]] std::string flight_path();

enum class FlightKind : std::uint8_t {
  kSpan = 0,     ///< a closed ScopedSpan (dur_ns, arg = bytes)
  kFlowOut = 1,  ///< AsyncIoPool submit (arg = flow id)
  kFlowIn = 2,   ///< AsyncIoPool worker dequeue (arg = flow id)
  kOp = 3,       ///< a closed OpScope (dur_ns, arg = dominant stage index)
};

/// Pushes one record onto the calling thread's ring. `name` must be a
/// string literal. Callers guard with flight_enabled().
void flight_record(FlightKind kind, const char* name, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, std::uint64_t arg, std::uint64_t op,
                   std::uint64_t parent) noexcept;

/// Writes every thread's ring to `path` as one JSON object:
///   {"format":"drx-flight","version":1,"reason":...,"threads":[...]}
/// Safe to call concurrently with recording (torn records are skipped).
[[nodiscard]] Status dump_flight(const std::string& path, const char* reason);

/// dump_flight() to the configured path.
[[nodiscard]] Status dump_flight(const char* reason);

/// Async-signal-safe variant used by the SIGSEGV/SIGABRT handlers: writes
/// with open(2)/write(2) and hand-rolled formatting only. Best effort.
void dump_flight_signal_safe(const char* reason) noexcept;

/// Installs chaining SIGSEGV/SIGABRT handlers that dump the flight rings
/// once, restore the previous handler, and re-raise. Idempotent; called
/// from a static initializer, exposed for tests.
void install_flight_signal_handlers() noexcept;

/// Total records ever pushed (test hook; monotonic, approximate).
[[nodiscard]] std::uint64_t flight_record_count() noexcept;

}  // namespace drx::obs
