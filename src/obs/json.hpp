// Minimal JSON emission + validation shared by the observability layer
// and the command-line tools (drx_stats, drx_inspect --json, the bench
// JSON reports). Emission is a streaming writer (no DOM); validation is a
// strict RFC 8259 recursive-descent checker used by tests and CI to prove
// emitted trace/metric files parse.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace drx::obs {

/// Streaming JSON writer. The caller drives structure with begin/end
/// calls; the writer inserts commas and escapes strings. Misuse (value
/// where a key is required, unbalanced end) is a programming error and
/// asserts via DRX_CHECK in the implementation.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document. Valid only when every begin_ has been ended.
  [[nodiscard]] const std::string& str() const;

 private:
  void comma();
  void emit_string(std::string_view s);

  enum class Frame : std::uint8_t { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool after_key_ = false;
};

/// Strict whole-document JSON validity check (single top-level value,
/// no trailing garbage). Returns true iff `text` is well-formed JSON.
[[nodiscard]] bool json_validate(std::string_view text);

}  // namespace drx::obs
