// Minimal JSON emission + validation shared by the observability layer
// and the command-line tools (drx_stats, drx_inspect --json, the bench
// JSON reports). Emission is a streaming writer (no DOM); validation is a
// strict RFC 8259 recursive-descent checker used by tests and CI to prove
// emitted trace/metric files parse.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace drx::obs {

/// Streaming JSON writer. The caller drives structure with begin/end
/// calls; the writer inserts commas and escapes strings. Misuse (value
/// where a key is required, unbalanced end) is a programming error and
/// asserts via DRX_CHECK in the implementation.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document. Valid only when every begin_ has been ended.
  [[nodiscard]] const std::string& str() const;

 private:
  void comma();
  void emit_string(std::string_view s);

  enum class Frame : std::uint8_t { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool after_key_ = false;
};

/// Strict whole-document JSON validity check (single top-level value,
/// no trailing garbage). Returns true iff `text` is well-formed JSON.
[[nodiscard]] bool json_validate(std::string_view text);

/// Parsed JSON value (DOM). Objects keep member order as a vector of
/// pairs so round-trips stay diffable; numbers are doubles (all values
/// drx tooling emits fit; exact u64 precision is not required by any
/// consumer — byte totals are compared as ratios).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Member lookup (first match); nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  [[nodiscard]] double as_number(double dflt = 0.0) const {
    return kind == Kind::kNumber ? number : dflt;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t dflt = 0) const {
    return kind == Kind::kNumber ? static_cast<std::int64_t>(number) : dflt;
  }
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t dflt = 0) const {
    return kind == Kind::kNumber && number >= 0
               ? static_cast<std::uint64_t>(number)
               : dflt;
  }
  [[nodiscard]] std::string_view as_string(std::string_view dflt = {}) const {
    return kind == Kind::kString ? std::string_view(string) : dflt;
  }

  /// Convenience: `find(key)` then numeric coercion with a default.
  [[nodiscard]] double number_at(std::string_view key,
                                 double dflt = 0.0) const {
    const JsonValue* v = find(key);
    return v != nullptr ? v->as_number(dflt) : dflt;
  }
  [[nodiscard]] std::uint64_t uint_at(std::string_view key,
                                      std::uint64_t dflt = 0) const {
    const JsonValue* v = find(key);
    return v != nullptr ? v->as_uint(dflt) : dflt;
  }
};

/// Strict whole-document parse into a DOM (same grammar json_validate
/// accepts). Strings are unescaped; \uXXXX (incl. surrogate pairs)
/// decodes to UTF-8.
[[nodiscard]] Result<JsonValue> json_parse(std::string_view text);

}  // namespace drx::obs
