// Per-rank trace spans exported in Chrome "Trace Event Format" JSON
// (open in chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off unless DRX_TRACE=<path> is set in the environment (or a
// test installs a path via set_trace_path). When off, a span still feeds
// the always-on flight recorder (obs/flight.hpp) — a bounded per-thread
// ring — so the fast path is two relaxed-atomic-bool branches and, when
// both sinks are off, no clock reads, no allocation, no locks.
//
// Causality: every armed span claims a span id and maintains the
// thread-local current-span chain (obs/opctx.hpp), so OpContexts captured
// at AsyncIoPool::submit carry their submit-side parent. Flow events
// ("s"/"f" phases, record_flow_out/record_flow_in) draw the async arrows
// in Perfetto linking a top-level op to the pool jobs and PFS requests it
// caused; op-summary events (record_op_summary) carry the per-stage
// attribution of each closed OpScope.
//
// Each simulated rank (obs::current_rank(), installed by simpi::run)
// renders as its own pseudo-process: pid = rank + 1, pid 0 = the host
// thread(s). A two-phase collective therefore shows as aligned span rows
// across ranks, exactly the paper's exchange/IO pipeline picture.
//
// Span names/categories must be string literals (or otherwise outlive the
// process): the ring buffer stores the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/flight.hpp"
#include "obs/opctx.hpp"
#include "util/error.hpp"

namespace drx::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

/// Slow path behind ~ScopedSpan: reads the clock once and fans out to the
/// enabled sinks (trace buffer, flight ring), re-checking each sink's flag
/// so an enable->disable race while a span is in flight stays benign.
void record_span_end(const char* name, const char* category,
                     std::uint64_t start_ns, std::uint64_t bytes,
                     std::uint64_t span_id, std::uint64_t parent_span);
}  // namespace detail

/// True iff spans are being recorded to the trace buffer. One of the two
/// branches on the fast path (the other is flight_enabled()).
inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Overrides the output path (test hook; DRX_TRACE is read once at
/// startup). An empty path disables tracing.
void set_trace_path(const std::string& path);
[[nodiscard]] std::string trace_path();

/// Records a complete ("X") event. `ts_ns`/`dur_ns` are nanoseconds on
/// the process-local monotonic clock; `bytes` != 0 adds an args payload.
/// The current thread's op id (if any) is attached automatically.
void record_span(const char* name, const char* category, std::uint64_t ts_ns,
                 std::uint64_t dur_ns, std::uint64_t bytes);

/// Records the submit side ("s" flow phase) / consume side ("f" phase) of
/// one async handoff. `flow_id` comes from next_flow_id(); `ctx` is the
/// OpContext travelling with the job. Feeds both enabled sinks; callers
/// guard with trace_enabled() || flight_enabled().
void record_flow_out(std::uint64_t flow_id, const OpContext& ctx);
void record_flow_in(std::uint64_t flow_id, const OpContext& ctx);

/// Records the per-stage summary of a closed OpScope (an "X" event with
/// cat "op" carrying stage nanoseconds + dominant stage in args, plus a
/// flight record). Called by OpScope; exposed for tests.
void record_op_summary(const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns, std::uint64_t op,
                       const std::uint64_t (&stage_ns)[kStageCount],
                       Stage dominant);

/// Nanoseconds since the first trace clock read (monotonic).
[[nodiscard]] std::uint64_t trace_now_ns();

/// RAII span covering its C++ scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category,
                      std::uint64_t bytes = 0) noexcept {
    if (!trace_enabled() && !flight_enabled()) return;
    name_ = name;
    category_ = category;
    bytes_ = bytes;
    span_id_ = detail::g_next_span.fetch_add(1, std::memory_order_relaxed) + 1;
    prev_span_ = detail::t_current_span;
    detail::t_current_span = span_id_;
    start_ns_ = trace_now_ns();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    detail::t_current_span = prev_span_;
    detail::record_span_end(name_, category_, start_ns_, bytes_, span_id_,
                            prev_span_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches/updates the bytes arg after construction (e.g. once a
  /// transfer size is known). No-op on a disarmed span, so callers can
  /// invoke it unconditionally from hot paths.
  void set_bytes(std::uint64_t bytes) noexcept {
    if (name_ == nullptr) return;
    bytes_ = bytes;
  }

 private:
  const char* name_ = nullptr;  ///< nullptr = disarmed (all sinks off)
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t prev_span_ = 0;
};

/// Writes buffered events as Trace Event Format JSON to `path`.
[[nodiscard]] Status write_trace(const std::string& path);

/// write_trace() to the configured path (no-op status if none).
[[nodiscard]] Status flush_trace();

/// Drops all buffered events (test isolation).
void clear_trace();

/// Number of span events currently buffered (flow/op-summary events are
/// counted separately in the written metadata).
[[nodiscard]] std::size_t trace_event_count();

/// Events dropped because the ring buffer filled.
[[nodiscard]] std::uint64_t trace_dropped_count();

}  // namespace drx::obs
