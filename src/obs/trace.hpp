// Per-rank trace spans exported in Chrome "Trace Event Format" JSON
// (open in chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off unless DRX_TRACE=<path> is set in the environment (or a
// test installs a path via set_trace_path). When off, every span is a
// single relaxed-atomic-bool branch — no clock reads, no allocation, no
// locks — so instrumentation can stay in hot paths permanently.
//
// Each simulated rank (obs::current_rank(), installed by simpi::run)
// renders as its own pseudo-process: pid = rank + 1, pid 0 = the host
// thread(s). A two-phase collective therefore shows as aligned span rows
// across ranks, exactly the paper's exchange/IO pipeline picture.
//
// Span names/categories must be string literals (or otherwise outlive the
// process): the ring buffer stores the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace drx::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True iff spans are being recorded. The one branch on the fast path.
inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Overrides the output path (test hook; DRX_TRACE is read once at
/// startup). An empty path disables tracing.
void set_trace_path(const std::string& path);
[[nodiscard]] std::string trace_path();

/// Records a complete ("X") event. `ts_ns`/`dur_ns` are nanoseconds on
/// the process-local monotonic clock; `bytes` != 0 adds an args payload.
void record_span(const char* name, const char* category, std::uint64_t ts_ns,
                 std::uint64_t dur_ns, std::uint64_t bytes);

/// Nanoseconds since the first trace clock read (monotonic).
[[nodiscard]] std::uint64_t trace_now_ns();

/// RAII span covering its C++ scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category,
                      std::uint64_t bytes = 0) noexcept {
    if (!trace_enabled()) return;
    name_ = name;
    category_ = category;
    bytes_ = bytes;
    start_ns_ = trace_now_ns();
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      record_span(name_, category_, start_ns_, trace_now_ns() - start_ns_,
                  bytes_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches/updates the bytes arg after construction (e.g. once a
  /// transfer size is known).
  void set_bytes(std::uint64_t bytes) noexcept { bytes_ = bytes; }

 private:
  const char* name_ = nullptr;  ///< nullptr = disarmed (tracing off)
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Writes buffered events as Trace Event Format JSON to `path`.
Status write_trace(const std::string& path);

/// write_trace() to the configured path (no-op status if none).
Status flush_trace();

/// Drops all buffered events (test isolation).
void clear_trace();

/// Number of events currently buffered (plus none that were dropped).
[[nodiscard]] std::size_t trace_event_count();

/// Events dropped because the ring buffer filled.
[[nodiscard]] std::uint64_t trace_dropped_count();

}  // namespace drx::obs
