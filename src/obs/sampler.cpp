#include "obs/sampler.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace drx::obs {

SampleRing::SampleRing(std::size_t capacity) : slots_(capacity) {
  DRX_CHECK(capacity >= 1);
}

void SampleRing::push(Sample s) {
  slots_[head_] = std::move(s);
  head_ = (head_ + 1) % slots_.size();
  if (size_ < slots_.size()) ++size_;
  ++pushed_;
}

std::vector<Sample> SampleRing::ordered() const {
  std::vector<Sample> out;
  out.reserve(size_);
  // Oldest sample sits at head_ once the ring has wrapped.
  const std::size_t start = size_ == slots_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(slots_[(start + i) % slots_.size()]);
  }
  return out;
}

namespace {

/// Sampler thread state. The condition variable (not sleep) makes
/// stop_sampler prompt, so tests with 1 ms intervals do not linger.
struct SamplerState {
  util::Mutex mu;
  util::CondVar cv;
  std::unique_ptr<SampleRing> ring DRX_GUARDED_BY(mu);
  std::thread worker DRX_GUARDED_BY(mu);
  bool running DRX_GUARDED_BY(mu) = false;
  bool stop_requested DRX_GUARDED_BY(mu) = false;
};

SamplerState& state() {
  static SamplerState* s = new SamplerState;  // leaked: used from atexit
  return *s;
}

void take_sample_locked(SamplerState& s) DRX_REQUIRES(s.mu) {
  if (s.ring == nullptr) s.ring = std::make_unique<SampleRing>(
      kDefaultSeriesCapacity);
  s.ring->push(Sample{trace_now_ns() / 1000, live_snapshot()});
}

void sampler_main(std::uint64_t interval_ms) {
  SamplerState& s = state();
  util::MutexLock lock(s.mu);
  while (!s.stop_requested) {
    // Sample first so even one interval's worth of run gets a point;
    // live_snapshot only takes shared locks, so holding mu here cannot
    // deadlock against metric writers.
    take_sample_locked(s);
    s.cv.wait_for(lock,
                  std::chrono::milliseconds(
                      static_cast<std::int64_t>(interval_ms)),
                  [&] {
                    s.mu.assert_held();
                    return s.stop_requested;
                  });
  }
}

void stop_and_dump_at_exit() {
  stop_sampler();
  const char* path = std::getenv("DRX_STATS_SERIES");
  const std::string out =
      (path != nullptr && path[0] != '\0') ? path : "drx_series.json";
  const Status st = write_series(out);
  if (!st.is_ok()) {
    std::fprintf(stderr, "[drx E] DRX_STATS_INTERVAL series dump failed: %s\n",
                 st.message().c_str());
  }
}

/// Reads DRX_STATS_INTERVAL once at startup.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("DRX_STATS_INTERVAL");
    if (env == nullptr || env[0] == '\0') return;
    const long ms = std::strtol(env, nullptr, 10);
    if (ms <= 0) return;
    start_sampler(static_cast<std::uint64_t>(ms));
    std::atexit(stop_and_dump_at_exit);
  }
};
EnvInit g_env_init;

}  // namespace

void start_sampler(std::uint64_t interval_ms, std::size_t capacity) {
  DRX_CHECK(interval_ms >= 1);
  stop_sampler();
  SamplerState& s = state();
  util::MutexLock lock(s.mu);
  s.ring = std::make_unique<SampleRing>(capacity);
  s.stop_requested = false;
  s.running = true;
  s.worker = std::thread(sampler_main, interval_ms);
}

void stop_sampler() {
  SamplerState& s = state();
  std::thread worker;
  {
    util::MutexLock lock(s.mu);
    if (!s.running) return;
    s.stop_requested = true;
    s.running = false;
    worker = std::move(s.worker);
  }
  s.cv.notify_all();
  if (worker.joinable()) worker.join();
}

bool sampler_running() {
  SamplerState& s = state();
  util::MutexLock lock(s.mu);
  return s.running;
}

void sampler_sample_now() {
  SamplerState& s = state();
  util::MutexLock lock(s.mu);
  take_sample_locked(s);
}

std::vector<Sample> sampler_series() {
  SamplerState& s = state();
  util::MutexLock lock(s.mu);
  return s.ring != nullptr ? s.ring->ordered() : std::vector<Sample>{};
}

void clear_sampler_series() {
  SamplerState& s = state();
  util::MutexLock lock(s.mu);
  s.ring.reset();
}

void series_to_json(const std::vector<Sample>& series, JsonWriter& w) {
  w.begin_object();
  w.key("format").value("drx-series");
  w.key("version").value(std::uint64_t{1});
  w.key("samples").begin_array();
  for (const Sample& s : series) {
    w.begin_object();
    w.key("t_us").value(s.t_us);
    w.key("counters").begin_object();
    for (const CounterSample& c : s.metrics.counters) {
      w.key(c.name).value(c.value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

Status write_series(const std::string& path) {
  JsonWriter w;
  series_to_json(sampler_series(), w);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open series file: " + path);
  }
  out << w.str() << "\n";
  if (!out.good()) {
    return Status(ErrorCode::kIoError, "short write to series file: " + path);
  }
  DRX_LOG_INFO << "wrote metric time series to " << path;
  return Status::ok();
}

}  // namespace drx::obs
