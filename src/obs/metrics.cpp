#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/window.hpp"
#include "util/logging.hpp"
#include "util/serde.hpp"

namespace drx::obs {

namespace {

enum class MetricKind : std::uint8_t { kCounter, kHistogram };

/// Process-global name -> id intern table. Never destroyed: metric ids may
/// be used from static destructors (atexit dump).
struct InternTable {
  util::Mutex mu;
  std::unordered_map<std::string, MetricId> ids DRX_GUARDED_BY(mu);
  std::vector<std::string> names DRX_GUARDED_BY(mu);  // index = id
  std::vector<MetricKind> kinds DRX_GUARDED_BY(mu);   // index = id
};

InternTable& interns() {
  static InternTable* table = new InternTable;
  return *table;
}

MetricId intern(std::string_view name, MetricKind kind) {
  InternTable& t = interns();
  util::MutexLock lock(t.mu);
  auto it = t.ids.find(std::string(name));
  if (it != t.ids.end()) {
    DRX_CHECK_MSG(t.kinds[it->second] == kind,
                  "metric registered twice with different kinds");
    return it->second;
  }
  const MetricId id = static_cast<MetricId>(t.names.size());
  t.names.emplace_back(name);
  t.kinds.push_back(kind);
  t.ids.emplace(std::string(name), id);
  return id;
}

std::string metric_name(MetricId id) {
  InternTable& t = interns();
  util::MutexLock lock(t.mu);
  DRX_CHECK(id < t.names.size());
  return t.names[id];
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local Registry* tls_registry = nullptr;
thread_local int tls_rank = -1;

/// Rank registries currently installed by live RankScopes, so a sampler
/// thread can see in-flight rank increments before they fold. A scope
/// unregisters *before* merging into its parent: a concurrent
/// live_snapshot may transiently undercount (monotonically recovered by
/// the next sample) but never double-counts.
util::Mutex g_live_mu;
std::vector<const Registry*> g_live_registries DRX_GUARDED_BY(g_live_mu);

void register_live(const Registry* reg) {
  util::MutexLock lock(g_live_mu);
  g_live_registries.push_back(reg);
}

void unregister_live(const Registry* reg) {
  util::MutexLock lock(g_live_mu);
  auto it = std::find(g_live_registries.begin(), g_live_registries.end(), reg);
  if (it != g_live_registries.end()) g_live_registries.erase(it);
}

util::Mutex g_aggregated_mu;
MetricsSnapshot g_aggregated DRX_GUARDED_BY(g_aggregated_mu);

/// Writes the process registry to $DRX_METRICS (binary snapshot readable
/// by drx_stats) when the process exits.
void dump_metrics_at_exit() {
  const char* path = std::getenv("DRX_METRICS");
  if (path == nullptr || path[0] == '\0') return;
  const MetricsSnapshot snap = process_registry().snapshot();
  const std::vector<std::byte> blob = snap.serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[drx obs] cannot write DRX_METRICS file %s\n", path);
    return;
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
}

}  // namespace

MetricId counter_id(std::string_view name) {
  return intern(name, MetricKind::kCounter);
}

MetricId histogram_id(std::string_view name) {
  return intern(name, MetricKind::kHistogram);
}

void Histogram::accumulate(
    std::uint64_t count, std::uint64_t sum,
    const std::array<std::uint64_t, kHistogramBuckets>& buckets) noexcept {
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] != 0) {
      buckets_[b].fetch_add(buckets[b], std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(std::uint64_t v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  const auto b = static_cast<std::size_t>(std::bit_width(v));
  buckets_[std::min(b, kHistogramBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(MetricId id) {
  // Steady state: one acquire load. The release store below publishes the
  // fully constructed Counter, and slots never revert to null.
  if (id < kFastIds) {
    if (Counter* fast = fast_counters_[id].load(std::memory_order_acquire)) {
      return *fast;
    }
  }
  util::WriterMutexLock lock(mu_);
  if (id >= counters_.size()) counters_.resize(id + 1);
  if (counters_[id] == nullptr) counters_[id] = std::make_unique<Counter>();
  if (id < kFastIds) {
    fast_counters_[id].store(counters_[id].get(), std::memory_order_release);
  }
  return *counters_[id];
}

Histogram& Registry::histogram(MetricId id) {
  if (id < kFastIds) {
    if (Histogram* fast =
            fast_histograms_[id].load(std::memory_order_acquire)) {
      return *fast;
    }
  }
  util::WriterMutexLock lock(mu_);
  if (id >= histograms_.size()) histograms_.resize(id + 1);
  if (histograms_[id] == nullptr) {
    histograms_[id] = std::make_unique<Histogram>();
  }
  if (id < kFastIds) {
    fast_histograms_[id].store(histograms_[id].get(),
                               std::memory_order_release);
  }
  return *histograms_[id];
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  util::ReaderMutexLock lock(mu_);
  for (MetricId id = 0; id < counters_.size(); ++id) {
    if (counters_[id] == nullptr) continue;
    snap.counters.push_back(CounterSample{metric_name(id),
                                          counters_[id]->value()});
  }
  for (MetricId id = 0; id < histograms_.size(); ++id) {
    if (histograms_[id] == nullptr) continue;
    HistogramSample s;
    s.name = metric_name(id);
    s.count = histograms_[id]->count();
    s.sum = histograms_[id]->sum();
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      s.buckets[b] = histograms_[id]->bucket(b);
    }
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void Registry::merge_into(Registry& dst) const {
  util::ReaderMutexLock lock(mu_);
  for (MetricId id = 0; id < counters_.size(); ++id) {
    if (counters_[id] == nullptr || counters_[id]->value() == 0) continue;
    dst.counter(id).add(counters_[id]->value());
  }
  for (MetricId id = 0; id < histograms_.size(); ++id) {
    if (histograms_[id] == nullptr || histograms_[id]->count() == 0) continue;
    const Histogram& in = *histograms_[id];
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      buckets[b] = in.bucket(b);
    }
    dst.histogram(id).accumulate(in.count(), in.sum(), buckets);
  }
}

void Registry::reset() {
  // Zero in place rather than destroying: the lock-free slot table and
  // any cached references stay valid across bench/test resets. Metrics
  // touched before a reset reappear in later snapshots with value 0,
  // which merge()/counter() treat the same as absent.
  {
    util::WriterMutexLock lock(mu_);
    for (const auto& c : counters_) {
      if (c != nullptr) c->reset();
    }
    for (const auto& h : histograms_) {
      if (h != nullptr) h->reset();
    }
  }
  // Window epochs captured before the reset are cumulative pre-reset
  // values; subtracting them from post-reset snapshots would produce
  // garbage deltas, so drop the ring. Must run after mu_ is released:
  // a concurrent window_tick holds the window mutex while it calls
  // live_snapshot() -> Registry::snapshot() -> mu_ (shared), so taking
  // the window mutex while holding mu_ would be an ABBA deadlock.
  if (this == &process_registry()) window_clear();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const CounterSample& c : other.counters) {
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const CounterSample& s) {
                             return s.name == c.name;
                           });
    if (it == counters.end()) {
      counters.push_back(c);
    } else {
      it->value += c.value;
    }
  }
  for (const HistogramSample& h : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const HistogramSample& s) {
                             return s.name == h.name;
                           });
    if (it == histograms.end()) {
      histograms.push_back(h);
    } else {
      it->count += h.count;
      it->sum += h.sum;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        it->buckets[b] += h.buckets[b];
      }
    }
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& cur,
                               const MetricsSnapshot& base) {
  const auto sub = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : 0;
  };
  MetricsSnapshot out;
  for (const CounterSample& c : cur.counters) {
    const std::uint64_t v = sub(c.value, base.counter(c.name));
    if (v != 0) out.counters.push_back(CounterSample{c.name, v});
  }
  for (const HistogramSample& h : cur.histograms) {
    const HistogramSample* b = nullptr;
    for (const HistogramSample& cand : base.histograms) {
      if (cand.name == h.name) {
        b = &cand;
        break;
      }
    }
    HistogramSample d;
    d.name = h.name;
    if (b == nullptr) {
      d = h;
    } else {
      d.count = sub(h.count, b->count);
      d.sum = sub(h.sum, b->sum);
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        d.buckets[i] = sub(h.buckets[i], b->buckets[i]);
      }
    }
    if (d.count != 0) out.histograms.push_back(std::move(d));
  }
  return out;
}

std::vector<std::byte> MetricsSnapshot::serialize() const {
  ByteWriter w;
  w.put_u32(0x4452584dU);  // "DRXM"
  w.put_u32(1);            // format version
  w.put_u32(static_cast<std::uint32_t>(counters.size()));
  for (const CounterSample& c : counters) {
    w.put_string(c.name);
    w.put_u64(c.value);
  }
  w.put_u32(static_cast<std::uint32_t>(histograms.size()));
  for (const HistogramSample& h : histograms) {
    w.put_string(h.name);
    w.put_u64(h.count);
    w.put_u64(h.sum);
    for (std::uint64_t b : h.buckets) w.put_u64(b);
  }
  return std::move(w).take();
}

Result<MetricsSnapshot> MetricsSnapshot::deserialize(
    std::span<const std::byte> data) {
  ByteReader r(data);
  DRX_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != 0x4452584dU) {
    return Status(ErrorCode::kCorrupt, "not a DRX metrics snapshot");
  }
  DRX_ASSIGN_OR_RETURN(std::uint32_t version, r.get_u32());
  if (version != 1) {
    return Status(ErrorCode::kUnsupported, "unknown metrics snapshot version");
  }
  MetricsSnapshot snap;
  DRX_ASSIGN_OR_RETURN(std::uint32_t nc, r.get_u32());
  snap.counters.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    CounterSample c;
    DRX_ASSIGN_OR_RETURN(c.name, r.get_string());
    DRX_ASSIGN_OR_RETURN(c.value, r.get_u64());
    snap.counters.push_back(std::move(c));
  }
  DRX_ASSIGN_OR_RETURN(std::uint32_t nh, r.get_u32());
  snap.histograms.reserve(nh);
  for (std::uint32_t i = 0; i < nh; ++i) {
    HistogramSample h;
    DRX_ASSIGN_OR_RETURN(h.name, r.get_string());
    DRX_ASSIGN_OR_RETURN(h.count, r.get_u64());
    DRX_ASSIGN_OR_RETURN(h.sum, r.get_u64());
    for (std::uint64_t& b : h.buckets) {
      DRX_ASSIGN_OR_RETURN(b, r.get_u64());
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

Registry& process_registry() noexcept {
  // Leaked intentionally: counters may be touched from static destructors.
  static Registry* reg = [] {
    std::atexit(dump_metrics_at_exit);
    return new Registry;
  }();
  return *reg;
}

Registry& registry() noexcept {
  return tls_registry != nullptr ? *tls_registry : process_registry();
}

int current_rank() noexcept { return tls_rank; }

MetricsSnapshot live_snapshot() {
  MetricsSnapshot snap = process_registry().snapshot();
  util::MutexLock lock(g_live_mu);
  for (const Registry* reg : g_live_registries) {
    snap.merge(reg->snapshot());
  }
  return snap;
}

RankScope::RankScope(int rank)
    : prev_registry_(tls_registry), prev_rank_(tls_rank) {
  tls_registry = &registry_;
  tls_rank = rank;
  register_live(&registry_);
  // Idle ranks must still appear in access profiles: zero traffic from a
  // participant is the signal the imbalance detectors exist to catch.
  profile_rank(rank);
}

RankScope::~RankScope() {
  unregister_live(&registry_);
  tls_registry = prev_registry_;
  tls_rank = prev_rank_;
  registry_.merge_into(registry());
}

ScopedTimer::ScopedTimer(MetricId hist_id) noexcept
    : id_(hist_id), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  const std::uint64_t elapsed_us = (now_ns() - start_ns_) / 1000;
  registry().histogram(id_).observe(elapsed_us);
}

/// Largest value a log2 bucket can hold: bucket i counts values with
/// bit_width == i, so its range is [2^(i-1), 2^i - 1] (bucket 0 holds 0).
std::uint64_t histogram_bucket_upper_bound(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

namespace {

std::uint64_t bucket_upper_bound(std::size_t i) {
  return histogram_bucket_upper_bound(i);
}

}  // namespace

HistogramSummary summarize_histogram(const HistogramSample& h) {
  HistogramSummary s;
  s.count = h.count;
  if (h.count == 0) return s;
  s.mean = static_cast<double>(h.sum) / static_cast<double>(h.count);
  const auto quantile = [&](double q) {
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(h.count) + 0.5);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      cum += h.buckets[b];
      if (cum >= target && cum != 0) return bucket_upper_bound(b);
    }
    return bucket_upper_bound(kHistogramBuckets - 1);
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  for (std::size_t b = kHistogramBuckets; b-- > 0;) {
    if (h.buckets[b] != 0) {
      s.max = bucket_upper_bound(b);
      break;
    }
  }
  return s;
}

std::string metrics_to_text(const MetricsSnapshot& snap) {
  std::string out;
  std::size_t width = 0;
  for (const CounterSample& c : snap.counters) {
    width = std::max(width, c.name.size());
  }
  for (const HistogramSample& h : snap.histograms) {
    width = std::max(width, h.name.size());
  }
  char buf[192];
  out += "counters:\n";
  for (const CounterSample& c : snap.counters) {
    std::snprintf(buf, sizeof(buf), "  %-*s %llu\n", static_cast<int>(width),
                  c.name.c_str(), static_cast<unsigned long long>(c.value));
    out += buf;
  }
  out += "histograms:\n";
  for (const HistogramSample& h : snap.histograms) {
    const HistogramSummary s = summarize_histogram(h);
    std::snprintf(buf, sizeof(buf),
                  "  %-*s count=%llu sum=%llu mean=%.1f p50<=%llu p95<=%llu "
                  "max<=%llu\n",
                  static_cast<int>(width), h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum), s.mean,
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p95),
                  static_cast<unsigned long long>(s.max));
    out += buf;
  }
  return out;
}

void metrics_to_json(const MetricsSnapshot& snap, JsonWriter& w) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const CounterSample& c : snap.counters) {
    w.key(c.name).value(c.value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSample& h : snap.histograms) {
    const HistogramSummary s = summarize_histogram(h);
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("p50").value(s.p50);
    w.key("p95").value(s.p95);
    w.key("p99").value(s.p99);
    w.key("max").value(s.max);
    w.key("buckets").begin_array();
    // Trailing zero buckets are elided to keep reports small.
    std::size_t last = kHistogramBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) w.value(h.buckets[b]);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void set_aggregated_snapshot(MetricsSnapshot snap) {
  util::MutexLock lock(g_aggregated_mu);
  g_aggregated = std::move(snap);
}

MetricsSnapshot aggregated_snapshot() {
  util::MutexLock lock(g_aggregated_mu);
  return g_aggregated;
}

}  // namespace drx::obs
