// Causal operation context for per-op stage attribution (docs/OBSERVABILITY.md).
//
// Every top-level DrxFile/DrxMpFile operation opens an OpScope, which claims
// a process-unique 64-bit op id and installs it in a thread-local OpContext.
// Instrumentation points between entry and exit attribute elapsed nanoseconds
// to one of six fixed stages via StageTimer/add_stage_ns; work handed to an
// AsyncIoPool carries the submitting thread's OpContext and restores it on
// the worker (OpRestore), so attribution follows the op across threads.
//
// When the OpScope closes it folds the per-stage totals into log2 histograms
// (obs.op.stage.<stage>_us), bumps a dominant-stage counter
// (obs.op.dominant.<stage>), and — when tracing / the flight recorder are
// on — emits an op-summary trace event and a flight record.
//
// Cost discipline: StageTimer reads no clock unless an op is active on the
// current thread (one thread-local load + compare); add_stage_ns on an
// inactive context is a branch. The stage accumulator is a fixed lock-free
// slot table indexed by op id, so attribution from worker threads needs no
// locks and is TSan-clean (relaxed atomics; a slot reused by a newer op
// simply drops the stale add — attribution is best-effort by design).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace drx::obs {

// From obs/trace.hpp (not included here: trace.hpp includes this header).
[[nodiscard]] std::uint64_t trace_now_ns();

/// Fixed attribution stages. `kOther` is never attributed directly: it is
/// derived at op close as wall time minus the attributed stages.
enum class Stage : std::uint8_t {
  kLockWait = 0,   ///< blocked acquiring the ChunkCache mutex
  kCacheFault = 1, ///< chunk-cache miss handling (fault fill, prefetch wait)
  kQueueWait = 2,  ///< AsyncIoPool latency: backpressure + enqueue->dequeue
  kIoService = 3,  ///< storage/PFS request service time
  kCopy = 4,       ///< scatter/gather between chunk and user buffers
  kOther = 5,      ///< wall time not covered by the stages above
};
inline constexpr std::size_t kStageCount = 6;

/// Stable lowercase stage name ("lock_wait", ...), used in metric names,
/// trace args and doctor findings.
[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// The causal identity instrumentation carries across threads: the op id
/// claimed by the enclosing OpScope (0 = no op in flight) plus the span id
/// that was current when the context was captured (the submit-side parent
/// of any async continuation).
struct OpContext {
  std::uint64_t op = 0;
  std::uint64_t parent_span = 0;
};

namespace detail {

inline constexpr std::size_t kOpSlots = 256;  // power of two (id & mask)

/// Per-op stage accumulator slot. Op ids map onto slots by low bits; a
/// writer whose id no longer owns the slot drops its contribution.
struct OpSlot {
  std::atomic<std::uint64_t> op{0};
  std::array<std::atomic<std::uint64_t>, kStageCount> stage_ns{};
};

inline std::array<OpSlot, kOpSlots>& op_slots() noexcept {
  static std::array<OpSlot, kOpSlots> slots;
  return slots;
}

inline thread_local OpContext t_op{};
inline thread_local std::uint64_t t_current_span = 0;
/// Same-thread StageTimer nesting depth per stage: only the outermost
/// timer counts, so layered instrumentation (core.read_chunk wrapping
/// pfs.read, both io_service) does not double-attribute.
inline thread_local std::uint8_t t_stage_depth[kStageCount] = {};

inline std::atomic<std::uint64_t> g_next_op{0};
inline std::atomic<std::uint64_t> g_next_span{0};
inline std::atomic<std::uint64_t> g_next_flow{0};

}  // namespace detail

/// True iff an OpScope is open on (or was restored onto) this thread.
[[nodiscard]] inline bool op_active() noexcept {
  return detail::t_op.op != 0;
}

/// The current thread's causal context (op 0 when none). Capture this at
/// every AsyncIoPool::submit call site.
[[nodiscard]] inline OpContext current_op() noexcept { return detail::t_op; }

/// Process-unique id for one submit->dequeue flow arrow (never 0).
[[nodiscard]] inline std::uint64_t next_flow_id() noexcept {
  return detail::g_next_flow.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Attributes `ns` to `stage` of the op in `ctx`. Best-effort and lock-free:
/// a no-op when ctx carries no op or the op already closed.
inline void add_stage_ns(const OpContext& ctx, Stage stage,
                         std::uint64_t ns) noexcept {
  if (ctx.op == 0 || ns == 0) return;
  detail::OpSlot& slot = detail::op_slots()[ctx.op & (detail::kOpSlots - 1)];
  if (slot.op.load(std::memory_order_relaxed) != ctx.op) return;
  slot.stage_ns[static_cast<std::size_t>(stage)].fetch_add(
      ns, std::memory_order_relaxed);
}

/// add_stage_ns against the current thread's context.
inline void add_stage_ns(Stage stage, std::uint64_t ns) noexcept {
  add_stage_ns(detail::t_op, stage, ns);
}

/// RAII stage attribution. Reads the clock only when an op is active at
/// construction; stop() ends attribution early (e.g. construct before a
/// mutex acquisition, stop() once it is held, to time exactly the wait).
class StageTimer {
 public:
  explicit StageTimer(Stage stage) noexcept : stage_(stage) {
    if (detail::t_op.op == 0) return;
    entered_ = true;
    if (detail::t_stage_depth[static_cast<std::size_t>(stage)]++ != 0) {
      return;  // nested in an outer timer of the same stage: it counts
    }
    ctx_ = detail::t_op;
    start_ns_ = trace_now_ns();
  }
  ~StageTimer() { stop(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void stop() noexcept {
    if (!entered_) return;
    entered_ = false;
    --detail::t_stage_depth[static_cast<std::size_t>(stage_)];
    if (ctx_.op != 0) {
      add_stage_ns(ctx_, stage_, trace_now_ns() - start_ns_);
      ctx_.op = 0;
    }
  }

 private:
  Stage stage_;
  OpContext ctx_{};  ///< op 0 = not the counting (outermost) timer
  bool entered_ = false;
  std::uint64_t start_ns_ = 0;
};

/// Marks one top-level operation. The outermost scope on a thread wins:
/// nested OpScopes (e.g. read_box_all calling read_box) are inert, so an
/// op's stages accumulate once. `name` must be a string literal.
///
/// On close: derives `other` = wall - attributed, records per-stage
/// histograms + the dominant-stage counter, and emits op-summary trace /
/// flight records when those sinks are enabled.
class OpScope {
 public:
  explicit OpScope(const char* name) noexcept;
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Id claimed by this scope; 0 when nested-inert.
  [[nodiscard]] std::uint64_t id() const noexcept { return op_id_; }

 private:
  const char* name_ = nullptr;  ///< nullptr = nested, scope is inert
  std::uint64_t op_id_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// Installs a captured OpContext on the current thread for the lifetime of
/// the scope (AsyncIoPool workers wrap each job in one), restoring the
/// previous context on exit.
class OpRestore {
 public:
  explicit OpRestore(const OpContext& ctx) noexcept
      : saved_op_(detail::t_op), saved_span_(detail::t_current_span) {
    detail::t_op = ctx;
    detail::t_current_span = ctx.parent_span;
  }
  ~OpRestore() {
    detail::t_op = saved_op_;
    detail::t_current_span = saved_span_;
  }
  OpRestore(const OpRestore&) = delete;
  OpRestore& operator=(const OpRestore&) = delete;

 private:
  OpContext saved_op_;
  std::uint64_t saved_span_;
};

}  // namespace drx::obs
